//! The discrete-event simulation kernel.
//!
//! Semantics follow the SpecC/SystemC family of system-level design
//! languages, which the RTOS model of the reproduced paper is layered on:
//!
//! * **Processes** are imperative bodies (closures) that suspend themselves
//!   with [`ProcCtx::wait`] / [`ProcCtx::waitfor`] and compose with
//!   [`ProcCtx::par`] fork/join.
//! * **Events** are pure synchronization points. [`ProcCtx::notify`] marks an
//!   event as notified for the *current delta cycle*; all processes waiting
//!   on it at the end of that delta resume, then the notification expires.
//! * **Time** advances in discrete steps to the earliest pending timed
//!   wake-up once no ready process and no pending notification remains.
//!
//! Each process runs on a real OS thread, but the kernel enforces that at
//! most one process executes at any host instant by strict token passing, so
//! simulations are sequential and deterministic — the same co-routine model
//! used by the SpecC reference simulator.
//!
//! ## Hot path
//!
//! The scheduling step is the product (the paper's speedup over an
//! ISS-based model comes entirely from making it cheap), so the kernel
//! keeps it lean:
//!
//! * **Handoffs** use a spin-then-park token word per process
//!   ([`ParkCell`]): resuming a process is one atomic store plus at most
//!   one `unpark`, and the kernel parks the same way waiting for the
//!   yield — no channels, no condvar round-trips.
//! * **Direct handoff**: the *yielding* thread drives the scheduler
//!   itself (under the state lock) and passes the run token straight to
//!   the successor process — or simply keeps running when it *is* its own
//!   successor (e.g. the only process stepping through `waitfor`s). The
//!   kernel thread parks for the whole stretch and is only woken for
//!   errors, quiescence, or the run horizon, so a scheduling step costs
//!   at most one host context switch instead of two. Decisions are made
//!   on the same shared state under the same lock in the same order no
//!   matter which thread drives, so the schedule (and every stat and
//!   trace byte) is identical to the kernel-driven one.
//! * **Threads are recycled** through the process-global worker pool
//!   ([`crate::pool`]): teardown quiesces via a [`WaitGroup`] instead of
//!   joining, and the next simulation's processes run on the parked
//!   workers instead of fresh OS threads.
//! * **Delta-cycle dedup is O(1)**: each event carries a generation stamp
//!   (`queued_gen`) matched against the kernel's current `delta_gen`, so
//!   queuing a notification never scans the notified list.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::chaos::{
    ChaosPlan, ChaosRecord, ChaosState, InjectedChaos, KernelInvariants, OracleState,
};
use crate::error::{AbortReason, ModelError, RunError, WaitEdge};
use crate::fault::{FaultPlan, FaultRecord, FaultState, NotifyFate};
use crate::ids::{EventId, ProcessId};
use crate::pool;
use crate::sync::{Mutex, ParkCell, WaitGroup, MIN_TOKEN};
use crate::time::SimTime;
use crate::trace::{
    CompactKind, KernelStats, RecordKind, SuspendReason, TraceConfig, TraceHandle, TraceSink,
};
use crate::wheel::TimerWheel;

/// A process body: runs once on its own thread with a [`ProcCtx`].
pub type ProcBody = Box<dyn FnOnce(&ProcCtx) + Send + 'static>;

/// A named child process description for [`ProcCtx::par`],
/// [`ProcCtx::spawn`] and [`Simulation::spawn`].
///
/// ```
/// use sldl_sim::{Child, Simulation};
///
/// let mut sim = Simulation::new();
/// sim.spawn(Child::new("hello", |_ctx| {}));
/// let report = sim.run().unwrap();
/// assert!(report.blocked.is_empty());
/// ```
pub struct Child {
    pub(crate) name: String,
    pub(crate) body: ProcBody,
}

impl Child {
    /// Creates a child process description with a debug `name`.
    pub fn new(name: impl Into<String>, body: impl FnOnce(&ProcCtx) + Send + 'static) -> Self {
        Child {
            name: name.into(),
            body: Box::new(body),
        }
    }

    /// The child's debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Consumes the child, returning its body — useful for executors that
    /// wrap a process body with extra setup/teardown.
    #[must_use]
    pub fn into_body(self) -> ProcBody {
        self.body
    }
}

impl core::fmt::Debug for Child {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Child").field("name", &self.name).finish()
    }
}

/// Outcome of a completed simulation run.
///
/// Like SpecC/SystemC, a simulation ends *normally* when no ready process,
/// pending notification, or timed wake-up remains — even if some processes
/// are still blocked (server loops waiting for events that will never come
/// are a normal modeling idiom). Such processes are listed in [`blocked`].
///
/// [`blocked`]: Report::blocked
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// Names of processes that never finished (blocked at end of run).
    pub blocked: Vec<String>,
    /// Faults injected during the run by the installed
    /// [`FaultPlan`](crate::FaultPlan) (empty when no plan was installed).
    pub faults: Vec<FaultRecord>,
    /// Schedule perturbations injected during the run by the installed
    /// [`ChaosPlan`](crate::ChaosPlan) (empty when no plan was installed).
    pub chaos: Vec<ChaosRecord>,
    /// Kernel self-metrics for the run (always collected; see
    /// [`KernelStats`]).
    pub kernel: KernelStats,
}

/// What the kernel does when all activity is exhausted while processes are
/// still blocked (a *stall*). Configured with
/// [`SimulationBuilder::stall_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum StallPolicy {
    /// Blocked processes end the run normally **unless** the declared
    /// wait-for graph (see [`SldlSync::declare_wait`](crate::SldlSync))
    /// contains a cycle, in which case the run fails with
    /// [`RunError::Deadlock`]. The default: server processes blocked on
    /// events that never come are a normal modeling idiom and never
    /// declare edges, so they keep ending runs cleanly.
    #[default]
    FailOnWaitCycle,
    /// Never fail on a stall, even with a declared wait cycle (the
    /// pre-deadlock-detection behavior).
    AllowBlocked,
    /// The strictest liveness predicate: *any* blocked process at the end
    /// of the run is an error.
    FailIfAnyBlocked,
}

// ---------------------------------------------------------------------------
// Kernel state
// ---------------------------------------------------------------------------

/// Resume token: run until the next suspension point.
const TOK_GO: u32 = MIN_TOKEN;
/// Resume token: unwind and exit — the simulation is being torn down or the
/// process was cancelled.
const TOK_CANCEL: u32 = MIN_TOKEN + 1;

/// Payload used to unwind a cancelled process thread.
struct CancelUnwind;

/// Payload used to unwind a process that misused the model; the misuse
/// details were already stored in the kernel state.
struct MisuseUnwind;

/// Payload used to unwind a process that aborted the run (watchdog expiry
/// or fault-triggered abort); the reason was already stored.
struct AbortUnwind;

/// Payload used to unwind a process that observed a broken invariant
/// (layer-level conformance hooks); the details were already stored.
struct InvariantUnwind;

/// Stored misuse details, turned into [`RunError::ModelMisuse`].
struct Misuse {
    process: String,
    location: String,
    error: ModelError,
}

/// Stored invariant-violation details, turned into
/// [`RunError::InvariantViolation`] by the kernel (or by `run_until` for
/// violations observed during teardown).
struct Violation {
    invariant: &'static str,
    subject: String,
    details: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Ready,
    Running,
    /// Waiting for one of the events whose waiter-slab nodes are listed
    /// in `ProcEntry::waiting_on`.
    WaitEvent,
    /// Waiting for a timed wake-up.
    WaitTime,
    /// Waiting for `pending` par-children to finish.
    Joining {
        pending: usize,
    },
    Finished,
}

struct ProcEntry {
    name: String,
    state: ProcState,
    /// The process thread's spin-then-park resume cell: the kernel (or a
    /// canceller) deposits [`TOK_GO`] / [`TOK_CANCEL`] here. Shared with
    /// the pooled worker running the process body.
    cell: Arc<ParkCell>,
    /// Parent joining on this process through `par`, if any.
    parent: Option<ProcessId>,
    /// Waiter-slab node indices this process holds, one per event it is
    /// registered on (for `wait_any`). The `Vec` is emptied by `pop` on
    /// wake/cancel so its capacity is reused across waits.
    waiting_on: Vec<u32>,
    /// The event that woke this process, for `wait_any`/`wait_timeout`.
    wake_cause: Option<EventId>,
    /// Invalidates stale timed wake-ups after an event-based wake.
    wake_gen: u64,
}

#[derive(Debug, Clone, Copy)]
enum TimedKind {
    Wake { pid: ProcessId, gen: u64 },
    Notify(EventId),
}

/// Null link in the waiter slab's intrusive lists.
const NIL: u32 = u32::MAX;

/// Slab node of an event's intrusive waiter list: one node per
/// (event, registration). Nodes live in `State::wait_nodes`, are linked
/// head-to-tail in registration order off `EventEntry::wait_head`/`_tail`,
/// and are recycled through `State::wait_free` — registering and
/// deregistering a waiter are both O(1) with no per-event allocation.
#[derive(Clone, Copy)]
struct WaitNode {
    pid: ProcessId,
    event: EventId,
    prev: u32,
    next: u32,
}

/// Per-event slab entry: liveness plus the generation stamp used for O(1)
/// delta-cycle dedup (an event is already queued for the current delta iff
/// `queued_gen == State::delta_gen`). Stamps are invalidated implicitly by
/// bumping `delta_gen` at each delta flush — no clearing pass. The
/// `wait_head`/`wait_tail` pair anchors the event's intrusive waiter list
/// in the `State::wait_nodes` slab ([`NIL`] when empty).
struct EventEntry {
    alive: bool,
    queued_gen: u64,
    wait_head: u32,
    wait_tail: u32,
}

struct State {
    now: SimTime,
    /// Horizon of the current `run_until` call: timed activity beyond it
    /// returns control to the kernel thread. `SimTime::MAX` outside runs.
    until: SimTime,
    procs: Vec<ProcEntry>,
    ready: VecDeque<ProcessId>,
    /// Pending timed wake-ups/notifications, earliest `(time, seq)` first.
    timed: TimerWheel<TimedKind>,
    /// Scratch for draining one instant's worth of `timed` entries without
    /// allocating (swapped empty in the timed branch, swapped back after).
    timed_due: Vec<(u64, TimedKind)>,
    seq: u64,
    /// Events notified in the current delta cycle, in notification order.
    notified: Vec<EventId>,
    /// Idle twin of `notified`, swapped in at each delta flush so the
    /// flush never allocates or frees.
    notified_scratch: Vec<EventId>,
    /// Current delta generation; starts at 1 so a fresh event's
    /// `queued_gen == 0` can never collide.
    delta_gen: u64,
    /// Waiter-list node slab (see [`WaitNode`]); indexed by the ids stored
    /// in `ProcEntry::waiting_on` and `EventEntry::wait_head`.
    wait_nodes: Vec<WaitNode>,
    /// Recycled `wait_nodes` indices.
    wait_free: Vec<u32>,
    events: Vec<EventEntry>,
    live_procs: usize,
    panic: Option<(String, String)>,
    misuse: Option<Misuse>,
    abort: Option<AbortReason>,
    /// Armed fault-injection state; `None` unless a non-empty
    /// [`FaultPlan`] was installed, which guarantees structurally that an
    /// empty plan perturbs nothing.
    faults: Option<FaultState>,
    /// Armed schedule-perturbation state; `None` unless a non-empty
    /// [`ChaosPlan`] was installed (same structural zero-perturbation
    /// guarantee as `faults`).
    chaos: Option<ChaosState>,
    /// Armed invariant-oracle state; `None` unless a non-empty
    /// [`KernelInvariants`] selection was installed, so disabled checks
    /// cost nothing on the hot path.
    oracle: Option<OracleState>,
    /// First invariant violation observed (by the oracle or a layer
    /// conformance hook); drained into [`RunError::InvariantViolation`].
    invariant: Option<Violation>,
    /// Declared wait-for edges, keyed by waiter name (sorted for
    /// deterministic cycle reporting): waiter → (resource, holder).
    wait_graph: BTreeMap<String, (String, String)>,
    stall_policy: StallPolicy,
    trace: Option<TraceHandle>,
    trace_kernel: bool,
    /// Kernel self-metrics, updated unconditionally (cheap integer stores;
    /// no allocation) on every run.
    stats: KernelStats,
    /// Last process handed the run token, for the kernel-level
    /// context-switch count.
    last_resumed: Option<ProcessId>,
}

impl State {
    fn record(&self, kind: RecordKind) {
        if let Some(t) = &self.trace {
            t.record(self.now, kind);
        }
    }

    /// Emits an allocation-free kernel record, if kernel records are on.
    fn record_kernel(&self, kind: CompactKind) {
        if self.trace_kernel {
            if let Some(t) = &self.trace {
                t.emit(self.now, kind);
            }
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Pushes a timed entry (seq-stamped) and counts the timer operation.
    fn push_timed(&mut self, time: SimTime, kind: TimedKind) {
        let seq = self.next_seq();
        self.stats.timer_ops += 1;
        self.timed.push(time, seq, kind);
    }

    /// Appends `pid` to `event`'s waiter list, recycling a slab node when
    /// one is free. Returns the node index for `ProcEntry::waiting_on`.
    fn link_waiter(&mut self, event: EventId, pid: ProcessId) -> u32 {
        let tail = self.events[event.index()].wait_tail;
        let node = WaitNode {
            pid,
            event,
            prev: tail,
            next: NIL,
        };
        let idx = match self.wait_free.pop() {
            Some(i) => {
                self.wait_nodes[i as usize] = node;
                i
            }
            None => {
                let i = u32::try_from(self.wait_nodes.len()).expect("waiter nodes exhausted");
                self.wait_nodes.push(node);
                i
            }
        };
        let entry = &mut self.events[event.index()];
        entry.wait_tail = idx;
        if tail == NIL {
            entry.wait_head = idx;
        } else {
            self.wait_nodes[tail as usize].next = idx;
        }
        idx
    }

    /// Unlinks a waiter node from its event's list and recycles it. O(1).
    /// The node's own fields are left intact so an in-flight traversal
    /// that pre-read its `next` link stays valid (nothing re-links nodes
    /// during a delta flush).
    fn unlink_waiter(&mut self, idx: u32) {
        let WaitNode {
            event, prev, next, ..
        } = self.wait_nodes[idx as usize];
        if prev == NIL {
            self.events[event.index()].wait_head = next;
        } else {
            self.wait_nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.events[event.index()].wait_tail = prev;
        } else {
            self.wait_nodes[next as usize].prev = prev;
        }
        self.wait_free.push(idx);
    }

    /// Whether `e` names a live (created, not deleted) event.
    fn event_alive(&self, e: EventId) -> bool {
        self.events.get(e.index()).is_some_and(|ev| ev.alive)
    }

    /// Queues `e` for delivery at the end of the current delta cycle,
    /// unless it is already queued there. Returns `true` when the event
    /// was freshly queued. O(1): a generation-stamp compare replaces the
    /// old `notified.contains(&e)` scan.
    fn queue_notify(&mut self, e: EventId) -> bool {
        let gen = self.delta_gen;
        let entry = &mut self.events[e.index()];
        if entry.queued_gen == gen {
            return false;
        }
        entry.queued_gen = gen;
        self.notified.push(e);
        true
    }

    /// Updates the ready-queue high-water mark after a push.
    fn note_ready_depth(&mut self) {
        self.stats.max_ready_depth = self.stats.max_ready_depth.max(self.ready.len() as u64);
    }

    /// Moves a blocked process to the ready queue.
    fn wake(&mut self, pid: ProcessId, cause: Option<EventId>) {
        let entry = &mut self.procs[pid.index()];
        debug_assert!(matches!(
            entry.state,
            ProcState::WaitEvent | ProcState::WaitTime
        ));
        entry.state = ProcState::Ready;
        entry.wake_cause = cause;
        entry.wake_gen += 1;
        // Deregister from every waited-on event: O(1) per registration,
        // and popping in place keeps the Vec's capacity for the next wait.
        while let Some(idx) = self.procs[pid.index()].waiting_on.pop() {
            self.unlink_waiter(idx);
        }
        self.ready.push_back(pid);
        self.note_ready_depth();
    }

    /// Checks the configured liveness predicate at a stall (all activity
    /// exhausted). Returns the error to fail the run with, if any.
    fn stall_error(&self) -> Option<RunError> {
        let blocked: Vec<String> = self
            .procs
            .iter()
            .filter(|p| p.state != ProcState::Finished)
            .map(|p| p.name.clone())
            .collect();
        if blocked.is_empty() {
            return None;
        }
        match self.stall_policy {
            StallPolicy::AllowBlocked => None,
            StallPolicy::FailOnWaitCycle => {
                self.find_wait_cycle().map(|cycle| RunError::Deadlock {
                    at: self.now,
                    cycle,
                    blocked,
                })
            }
            StallPolicy::FailIfAnyBlocked => Some(RunError::Deadlock {
                at: self.now,
                cycle: self.find_wait_cycle().unwrap_or_default(),
                blocked,
            }),
        }
    }

    /// Finds a cycle in the declared wait-for graph, if one exists.
    /// Iteration order is deterministic (edges are kept sorted by waiter
    /// name), so the reported cycle is stable across runs.
    fn find_wait_cycle(&self) -> Option<Vec<WaitEdge>> {
        for start in self.wait_graph.keys() {
            let mut path: Vec<&String> = Vec::new();
            let mut cur = start;
            loop {
                if let Some(pos) = path.iter().position(|&w| w == cur) {
                    // Found a cycle: path[pos..] closes back on `cur`.
                    let cycle = path[pos..]
                        .iter()
                        .map(|&w| {
                            let (resource, holder) = &self.wait_graph[w];
                            WaitEdge {
                                waiter: w.clone(),
                                resource: resource.clone(),
                                holder: holder.clone(),
                            }
                        })
                        .collect();
                    return Some(cycle);
                }
                path.push(cur);
                match self
                    .wait_graph
                    .get(cur)
                    .and_then(|(_, holder)| self.wait_graph.get_key_value(holder))
                {
                    Some((next, _)) => cur = next,
                    // Chain ends at a holder that is not itself waiting.
                    None => break,
                }
            }
        }
        None
    }

    /// Marks `pid` finished and propagates par-join bookkeeping.
    fn finish(&mut self, pid: ProcessId) {
        let entry = &mut self.procs[pid.index()];
        if entry.state == ProcState::Finished {
            return;
        }
        entry.state = ProcState::Finished;
        self.live_procs -= 1;
        let parent = entry.parent.take();
        self.record_kernel(CompactKind::ProcessFinished { pid });
        if let Some(parent) = parent {
            let pentry = &mut self.procs[parent.index()];
            if let ProcState::Joining { pending } = &mut pentry.state {
                *pending -= 1;
                if *pending == 0 {
                    pentry.state = ProcState::Ready;
                    self.ready.push_back(parent);
                    self.note_ready_depth();
                }
            }
        }
    }
}

pub(crate) struct Shared {
    state: Mutex<State>,
    /// Processes ping the kernel here after updating their state: one
    /// token deposit instead of the old mpsc channel send.
    kernel_cell: ParkCell,
    /// Outstanding process jobs on pooled worker threads. Teardown
    /// *quiesces* (waits for this to drain) instead of joining handles,
    /// because pooled threads outlive the simulation.
    wg: WaitGroup,
    /// Mirror of `State::now` in nanoseconds, so `ProcCtx::now` is a
    /// lock-free load. Safe: time only advances while no process runs.
    now_ns: AtomicU64,
}

impl Shared {
    /// Publishes the simulated clock to the lock-free mirror read by
    /// [`ProcCtx::now`]. `Relaxed` suffices: time only advances while no
    /// process runs, and the resuming handoff orders the store anyway.
    fn store_now(&self, now: SimTime) {
        self.now_ns.store(now.as_nanos(), Ordering::Relaxed);
    }

    /// Lock-free read of the simulated clock.
    fn load_now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::Relaxed))
    }

    /// Allocates an event (used by `SldlSync` so channels can be built
    /// outside of a running process).
    pub(crate) fn alloc_event(&self) -> EventId {
        alloc_event(&mut self.state.lock())
    }

    /// Declares a wait-for edge: `waiter` is blocked on `resource`, held
    /// by `holder` (used by `SldlSync::declare_wait`).
    pub(crate) fn declare_wait(&self, waiter: String, resource: String, holder: String) {
        self.state
            .lock()
            .wait_graph
            .insert(waiter, (resource, holder));
    }

    /// Removes `waiter`'s declared wait-for edge, if any.
    pub(crate) fn clear_wait(&self, waiter: &str) {
        self.state.lock().wait_graph.remove(waiter);
    }
}

/// Outcome of driving the scheduler to its next decision.
enum Step {
    /// Hand the run token to this process (already marked `Running` and
    /// counted in the stats by [`next_step`]). The flag asks the resuming
    /// side to *stall* the handoff (chaos injection): deliver the token on
    /// the slow path to widen race windows in the spin-then-park protocol.
    /// Always `false` without an armed [`ChaosPlan`].
    Resume(ProcessId, Arc<ParkCell>, bool),
    /// The kernel thread must take over: an error is pending, the run is
    /// quiescent, or the next timed activity lies beyond the horizon.
    Kernel,
}

/// Drives the scheduler until a process must be resumed or the kernel
/// thread must take over. Runs under the state lock on **whichever thread
/// yields** — direct handoff: the yielding thread resumes its successor
/// itself (and skips the park entirely when it *is* its own successor),
/// leaving the kernel thread asleep. Every decision reads only the locked
/// state, so the schedule — and every stat and trace record — is byte-
/// identical no matter which thread happens to drive.
fn next_step(shared: &Shared, st: &mut State) -> Step {
    loop {
        // Pending errors always bounce control to the kernel thread before
        // any further resume, preserving the "nothing runs after a
        // panic/misuse/abort" invariant regardless of who is driving.
        if st.panic.is_some() || st.misuse.is_some() || st.abort.is_some() || st.invariant.is_some()
        {
            return Step::Kernel;
        }
        // Chaos hook: an armed plan may pull the next runnable process
        // from inside the ready queue instead of its head, and/or force
        // the handoff onto the slow path. `st.chaos` is `None` unless a
        // non-empty plan was installed, so the common path is exactly the
        // old `pop_front`.
        let (pick, stall) = match st.chaos.as_mut() {
            Some(c) if !st.ready.is_empty() => c.decide(st.ready.len()),
            _ => (None, false),
        };
        let popped = match pick {
            Some(j) if j > 0 => st.ready.remove(j),
            _ => st.ready.pop_front(),
        };
        if let Some(pid) = popped {
            let entry = &mut st.procs[pid.index()];
            entry.state = ProcState::Running;
            let cell = Arc::clone(&entry.cell);
            st.stats.processes_resumed += 1;
            if st.last_resumed.is_some_and(|last| last != pid) {
                st.stats.context_switches += 1;
            }
            st.last_resumed = Some(pid);
            st.record_kernel(CompactKind::ProcessResumed { pid });
            let now = st.now;
            if let Some(c) = st.chaos.as_mut() {
                let decision = c.last_decision();
                if let Some(position) = pick.filter(|&j| j > 0) {
                    c.log.push(ChaosRecord {
                        at: now,
                        chaos: InjectedChaos::ReorderedDispatch {
                            decision,
                            position: position as u64,
                            process: pid,
                        },
                    });
                }
                if stall {
                    c.log.push(ChaosRecord {
                        at: now,
                        chaos: InjectedChaos::StalledHandoff {
                            decision,
                            process: pid,
                        },
                    });
                }
            }
            return Step::Resume(pid, cell, stall);
        }
        if !st.notified.is_empty() {
            // Oracle hook: validate the delta-flush boundary before
            // delivering. `st.oracle` is `None` unless checks were
            // enabled, so the common path pays one pointer test.
            if st.oracle.is_some() {
                oracle_delta_flush(st);
                if st.invariant.is_some() {
                    return Step::Kernel;
                }
            }
            // Delta boundary: deliver notifications in order. The
            // generation bump implicitly invalidates every event's
            // `queued_gen` stamp for the next delta — no clearing pass.
            st.stats.delta_cycles += 1;
            st.delta_gen += 1;
            // Swap `notified` with its idle twin so the flush itself never
            // allocates; the drained buffer is handed back (cleared) below.
            let mut flush = std::mem::take(&mut st.notified_scratch);
            debug_assert!(flush.is_empty());
            std::mem::swap(&mut st.notified, &mut flush);
            for &e in &flush {
                // Walk the event's intrusive waiter list head-first —
                // registration order, exactly the old Vec's push order.
                // `wake` unlinks only the woken process's own nodes and
                // leaves each unlinked node's fields intact, and no node
                // is (re-)linked during the flush, so the pre-read `next`
                // stays valid even when the woken process held it.
                let mut idx = st.events[e.index()].wait_head;
                while idx != NIL {
                    let node = st.wait_nodes[idx as usize];
                    idx = node.next;
                    // A waiter may already have been woken by an earlier
                    // event in this same delta.
                    if st.procs[node.pid.index()].state == ProcState::WaitEvent {
                        st.wake(node.pid, Some(e));
                    }
                }
            }
            flush.clear();
            st.notified_scratch = flush;
            continue;
        }
        if let Some(top) = st.timed.peek_next_time() {
            if top > st.until {
                return Step::Kernel;
            }
            let now = top;
            st.now = now;
            shared.store_now(now);
            // Pull everything due at this instant out of the wheel in one
            // go, into a scratch buffer that is reused across steps. The
            // wheel hands entries back sorted by seq — the exact pop order
            // of the old (time, seq) binary heap. Processing never pushes
            // new timed entries, so a single drain covers the instant.
            let mut due = std::mem::take(&mut st.timed_due);
            debug_assert!(due.is_empty());
            let drained = st.timed.drain_next(&mut due);
            debug_assert_eq!(drained, Some(now));
            for &(_seq, kind) in &due {
                st.stats.timer_ops += 1;
                match kind {
                    TimedKind::Wake { pid, gen } => {
                        let p = &st.procs[pid.index()];
                        let fresh = p.wake_gen == gen
                            && matches!(p.state, ProcState::WaitTime | ProcState::WaitEvent);
                        if fresh {
                            st.wake(pid, None);
                        }
                    }
                    TimedKind::Notify(e) => {
                        if st.event_alive(e) {
                            // Stats/records stay per-entry (they always
                            // were), but duplicate entries popped at the
                            // same timestamp coalesce into one queued
                            // delivery — the stamp makes the dedup O(1).
                            st.stats.events_notified += 1;
                            st.record_kernel(CompactKind::EventNotified { event: e });
                            st.queue_notify(e);
                        }
                    }
                }
            }
            due.clear();
            st.timed_due = due;
            // Fault hook: registered events may fire spuriously on every
            // advance of simulated time (glitching interrupt lines).
            // `st.faults` is `None` unless a non-empty plan was armed, so
            // the common path draws no randomness. Dedup against already-
            // queued notifications rides the same generation stamp as
            // everything else.
            if let Some(mut f) = st.faults.take() {
                for e in f.spurious_events(now) {
                    if st.event_alive(e) && st.queue_notify(e) {
                        st.stats.events_notified += 1;
                        st.record_kernel(CompactKind::EventNotified { event: e });
                    }
                }
                st.faults = Some(f);
            }
            continue;
        }
        // Quiescent: no ready process, no pending notification, no timed
        // wake-up. The kernel applies the stall policy.
        return Step::Kernel;
    }
}

/// Invariant-oracle checks at a delta-flush boundary (under the state
/// lock, before notifications are delivered). Only the first violation is
/// recorded; `next_step` bounces to the kernel as soon as one exists.
fn oracle_delta_flush(st: &mut State) {
    let Some(mut o) = st.oracle.take() else {
        return;
    };
    let checks = o.checks;
    let mut viol: Option<Violation> = None;
    if checks.delta_monotonic {
        // The flush below will advance the generation to `delta_gen + 1`;
        // that value must strictly exceed the previous flush's. A
        // regression means some code path rewound the stamp clock, which
        // silently corrupts the O(1) dedup.
        let new_gen = st.delta_gen + 1;
        if new_gen <= o.last_flush_gen {
            viol = Some(Violation {
                invariant: "delta-monotonicity",
                subject: format!("delta generation {}", st.delta_gen),
                details: format!(
                    "flush generation {new_gen} does not exceed the previous flush's {}",
                    o.last_flush_gen
                ),
            });
        }
        o.last_flush_gen = new_gen;
    }
    if checks.event_consistency && viol.is_none() {
        for &e in &st.notified {
            let entry = &st.events[e.index()];
            if !entry.alive {
                viol = Some(Violation {
                    invariant: "event-consistency",
                    subject: format!("{e}"),
                    details: "dead event queued for delta delivery".into(),
                });
                break;
            }
            if entry.queued_gen != st.delta_gen {
                viol = Some(Violation {
                    invariant: "event-consistency",
                    subject: format!("{e}"),
                    details: format!(
                        "queued stamp {} does not match the current delta generation {}",
                        entry.queued_gen, st.delta_gen
                    ),
                });
                break;
            }
        }
    }
    if checks.park_tokens && viol.is_none() {
        // Strict token passing: while a scheduling decision runs (under
        // the lock), every token deposited earlier has been consumed, so
        // no unfinished process may hold one. Finished processes may
        // legitimately hold an unconsumed cancel token.
        for p in &st.procs {
            if p.state == ProcState::Finished {
                continue;
            }
            let raw = p.cell.peek_raw();
            if raw >= MIN_TOKEN {
                viol = Some(Violation {
                    invariant: "park-tokens",
                    subject: format!("process `{}`", p.name),
                    details: format!("unconsumed resume token {raw} outside a handoff"),
                });
                break;
            }
        }
    }
    if let Some(v) = viol {
        st.invariant.get_or_insert(v);
    }
    st.oracle = Some(o);
}

/// Invariant-oracle checks after teardown has quiesced the worker pool.
/// Violations found here are surfaced by `run_until` when the run would
/// otherwise have succeeded.
fn oracle_teardown(shared: &Shared, st: &mut State) {
    let Some(o) = st.oracle.take() else {
        return;
    };
    let checks = o.checks;
    let mut viol: Option<Violation> = None;
    if checks.pool_quiescence {
        let outstanding = shared.wg.outstanding();
        if outstanding != 0 {
            viol = Some(Violation {
                invariant: "pool-quiescence",
                subject: "worker pool".into(),
                details: format!("{outstanding} process job(s) outstanding after drain"),
            });
        } else {
            // After quiescence every worker consumed its final token
            // (resume or cancel) on the way out; a leftover token means a
            // handoff was lost.
            for p in &st.procs {
                let raw = p.cell.peek_raw();
                if raw >= MIN_TOKEN {
                    viol = Some(Violation {
                        invariant: "pool-quiescence",
                        subject: format!("process `{}`", p.name),
                        details: format!("token {raw} left unconsumed after pool drain"),
                    });
                    break;
                }
            }
        }
    }
    if checks.wait_graph_acyclic && viol.is_none() {
        if let Some(cycle) = st.find_wait_cycle() {
            let n = cycle.len();
            let malformed = (0..n).find(|&i| cycle[i].holder != cycle[(i + 1) % n].waiter);
            if let Some(i) = malformed {
                viol = Some(Violation {
                    invariant: "wait-graph-acyclic",
                    subject: format!("`{}`", cycle[i].waiter),
                    details: format!(
                        "reported wait cycle is malformed: edge {i} holds `{}` but edge {} waits \
                         as `{}`",
                        cycle[i].holder,
                        (i + 1) % n,
                        cycle[(i + 1) % n].waiter
                    ),
                });
            }
        }
    }
    if let Some(v) = viol {
        st.invariant.get_or_insert(v);
    }
    st.oracle = Some(o);
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

/// Owner of a discrete-event simulation: spawn root processes, create
/// events, then [`run`](Simulation::run).
///
/// ```
/// use sldl_sim::{Child, Simulation};
/// use std::time::Duration;
///
/// let mut sim = Simulation::new();
/// sim.spawn(Child::new("main", |ctx| {
///     ctx.waitfor(Duration::from_micros(500));
///     assert_eq!(ctx.now().as_micros(), 500);
/// }));
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time.as_micros(), 500);
/// ```
pub struct Simulation {
    shared: Arc<Shared>,
    torn_down: bool,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

/// Declarative configuration for a [`Simulation`], obtained from
/// [`Simulation::builder`].
///
/// All options default to "off": `SimulationBuilder::default().build()` is
/// byte-identical to [`Simulation::new`]. The builder is plain data, so a
/// scenario description can carry one around (or the pieces to make one)
/// and construct fresh, isolated simulations on demand — e.g. one per
/// sweep point on a worker thread.
#[derive(Default)]
#[must_use = "call `.build()` to obtain the configured Simulation"]
pub struct SimulationBuilder {
    fault_plan: Option<FaultPlan>,
    chaos_plan: Option<ChaosPlan>,
    invariants: Option<KernelInvariants>,
    stall_policy: Option<StallPolicy>,
    trace: Option<TraceConfig>,
    trace_sink: Option<Box<dyn TraceSink>>,
}

impl core::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("fault_plan", &self.fault_plan)
            .field("chaos_plan", &self.chaos_plan)
            .field("invariants", &self.invariants)
            .field("stall_policy", &self.stall_policy)
            .field("trace", &self.trace)
            .field("custom_sink", &self.trace_sink.is_some())
            .finish()
    }
}

impl SimulationBuilder {
    /// Installs a seeded [`FaultPlan`]. An empty plan ([`FaultPlan::none`]
    /// or all-zero rates) is not armed at all, so it is guaranteed
    /// byte-identical to no injection.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Installs a seeded [`ChaosPlan`] perturbing kernel scheduling
    /// decisions. An empty plan ([`ChaosPlan::none`] or all-zero rates)
    /// is not armed at all, so it is guaranteed byte-identical to no
    /// perturbation.
    pub fn chaos_plan(mut self, plan: ChaosPlan) -> Self {
        self.chaos_plan = Some(plan);
        self
    }

    /// Enables the kernel invariant oracle for the selected checks (see
    /// [`KernelInvariants`]). An empty selection is not armed at all —
    /// the disabled oracle has zero overhead.
    pub fn invariants(mut self, checks: KernelInvariants) -> Self {
        self.invariants = Some(checks);
        self
    }

    /// Configures what happens when all activity is exhausted while
    /// processes are still blocked (see [`StallPolicy`]).
    pub fn stall_policy(mut self, policy: StallPolicy) -> Self {
        self.stall_policy = Some(policy);
        self
    }

    /// Attaches a trace recorder; fetch the handle from the built
    /// simulation via [`Simulation::trace_handle`]. The sink is chosen by
    /// [`TraceConfig::sink`] (in-memory by default, or a bounded ring
    /// buffer); for arbitrary sinks use
    /// [`trace_sink`](SimulationBuilder::trace_sink).
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Attaches a trace recorder over a caller-provided [`TraceSink`]
    /// (e.g. a [`StreamSink`](crate::StreamSink) writing to a file),
    /// overriding [`TraceConfig::sink`]. Implies tracing even without a
    /// [`trace`](SimulationBuilder::trace) call.
    pub fn trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Builds the configured simulation at time zero.
    #[must_use]
    pub fn build(self) -> Simulation {
        let mut sim = Simulation::new();
        if let Some(plan) = self.fault_plan {
            sim.install_fault_plan(plan);
        }
        if let Some(plan) = self.chaos_plan {
            sim.install_chaos_plan(plan);
        }
        if let Some(checks) = self.invariants {
            sim.install_invariants(checks);
        }
        if let Some(policy) = self.stall_policy {
            sim.install_stall_policy(policy);
        }
        if self.trace.is_some() || self.trace_sink.is_some() {
            let config = self.trace.unwrap_or_default();
            let _handle = sim.install_trace(config, self.trace_sink);
        }
        sim
    }
}

impl Simulation {
    /// Starts configuring a simulation declaratively. This is the only way
    /// to set up pre-run kernel state (fault plan, stall policy, tracing).
    ///
    /// ```
    /// use sldl_sim::{FaultPlan, Simulation, StallPolicy, TraceConfig};
    ///
    /// let sim = Simulation::builder()
    ///     .fault_plan(FaultPlan::seeded(7).with_drop_notify(0.1))
    ///     .stall_policy(StallPolicy::AllowBlocked)
    ///     .trace(TraceConfig::default())
    ///     .build();
    /// let trace = sim.trace_handle().expect("trace was configured");
    /// # let _ = trace;
    /// ```
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Creates an empty simulation at time zero.
    #[must_use]
    pub fn new() -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                now: SimTime::ZERO,
                until: SimTime::MAX,
                procs: Vec::new(),
                ready: VecDeque::new(),
                timed: TimerWheel::new(),
                timed_due: Vec::new(),
                seq: 0,
                notified: Vec::new(),
                notified_scratch: Vec::new(),
                delta_gen: 1,
                wait_nodes: Vec::new(),
                wait_free: Vec::new(),
                events: Vec::new(),
                live_procs: 0,
                panic: None,
                misuse: None,
                abort: None,
                faults: None,
                chaos: None,
                oracle: None,
                invariant: None,
                wait_graph: BTreeMap::new(),
                stall_policy: StallPolicy::default(),
                trace: None,
                trace_kernel: false,
                stats: KernelStats::default(),
                last_resumed: None,
            }),
            kernel_cell: ParkCell::new(),
            wg: WaitGroup::new(),
            now_ns: AtomicU64::new(0),
        });
        Simulation {
            shared,
            torn_down: false,
        }
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        let mut st = self.shared.state.lock();
        st.faults = if plan.is_empty() {
            None
        } else {
            Some(FaultState::new(plan))
        };
    }

    fn install_chaos_plan(&mut self, plan: ChaosPlan) {
        let mut st = self.shared.state.lock();
        st.chaos = if plan.is_empty() {
            None
        } else {
            Some(ChaosState::new(plan))
        };
    }

    fn install_invariants(&mut self, checks: KernelInvariants) {
        let mut st = self.shared.state.lock();
        st.oracle = if checks.is_empty() {
            None
        } else {
            Some(OracleState::new(checks))
        };
    }

    fn install_stall_policy(&mut self, policy: StallPolicy) {
        self.shared.state.lock().stall_policy = policy;
    }

    fn install_trace(
        &mut self,
        config: TraceConfig,
        sink: Option<Box<dyn TraceSink>>,
    ) -> TraceHandle {
        let handle = match sink {
            Some(sink) => TraceHandle::with_sink(sink),
            None => TraceHandle::from_config(config.sink),
        };
        let mut st = self.shared.state.lock();
        st.trace = Some(handle.clone());
        st.trace_kernel = config.kernel_records;
        handle
    }

    /// Returns the trace handle if tracing was configured (via
    /// [`SimulationBuilder::trace`] or
    /// [`SimulationBuilder::trace_sink`]).
    #[must_use]
    pub fn trace_handle(&self) -> Option<TraceHandle> {
        self.shared.state.lock().trace.clone()
    }

    /// Snapshot of the kernel self-metrics collected so far. The final
    /// stats of a completed run are carried by [`Report::kernel`] (the
    /// run consumes the simulation).
    #[must_use]
    pub fn kernel_stats(&self) -> KernelStats {
        self.shared.state.lock().stats.clone()
    }

    /// Allocates a fresh event before the simulation starts.
    pub fn event_new(&mut self) -> EventId {
        alloc_event(&mut self.shared.state.lock())
    }

    /// Returns the raw SLDL synchronization layer for building channels
    /// (see [`crate::channel`]).
    #[must_use]
    pub fn sync_layer(&self) -> crate::channel::SldlSync {
        crate::channel::SldlSync {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Spawns a root process, ready at time zero.
    ///
    /// Returns the new process's id.
    pub fn spawn(&mut self, child: Child) -> ProcessId {
        let mut st = self.shared.state.lock();
        spawn_locked(&self.shared, &mut st, child, None)
    }

    /// Runs the simulation until no activity remains.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ProcessPanicked`] if any simulated process
    /// panicked; the simulation is torn down in that case.
    pub fn run(self) -> Result<Report, RunError> {
        self.run_until(SimTime::MAX)
    }

    /// Runs the simulation, stopping once the next timed activity would be
    /// later than `until` (pending work at earlier times is completed).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ProcessPanicked`] if any simulated process
    /// panicked.
    pub fn run_until(mut self, until: SimTime) -> Result<Report, RunError> {
        let started = std::time::Instant::now();
        let result = self.run_loop(until);
        let wall_time = started.elapsed();
        self.teardown();
        match result {
            Err(e) => Err(e),
            Ok(end_time) => {
                let mut st = self.shared.state.lock();
                // Violations observed by the oracle's teardown checks (or
                // stored by a layer hook racing the end of the run) fail
                // an otherwise clean run.
                if let Some(v) = st.invariant.take() {
                    let at = st.now;
                    return Err(RunError::InvariantViolation {
                        invariant: v.invariant,
                        subject: v.subject,
                        details: v.details,
                        at,
                    });
                }
                st.stats.wall_time = wall_time;
                let blocked = st
                    .procs
                    .iter()
                    .filter(|p| p.state != ProcState::Finished)
                    .map(|p| p.name.clone())
                    .collect();
                let faults = st
                    .faults
                    .as_mut()
                    .map(|f| std::mem::take(&mut f.log))
                    .unwrap_or_default();
                let chaos = st
                    .chaos
                    .as_mut()
                    .map(|c| std::mem::take(&mut c.log))
                    .unwrap_or_default();
                let kernel = st.stats.clone();
                Ok(Report {
                    end_time,
                    blocked,
                    faults,
                    chaos,
                    kernel,
                })
            }
        }
    }

    fn run_loop(&mut self, until: SimTime) -> Result<SimTime, RunError> {
        // The kernel waits on its own park cell; process threads drive the
        // schedule among themselves (direct handoff) and only wake the
        // kernel for errors, quiescence, or the run horizon.
        self.shared.kernel_cell.register();
        self.shared.state.lock().until = until;
        loop {
            let (cell, stall) = {
                let mut st = self.shared.state.lock();
                if let Some((process, message)) = st.panic.take() {
                    return Err(RunError::ProcessPanicked { process, message });
                }
                if let Some(m) = st.misuse.take() {
                    return Err(RunError::ModelMisuse {
                        process: m.process,
                        location: m.location,
                        error: m.error,
                    });
                }
                if let Some(reason) = st.abort.take() {
                    let at = st.now;
                    return Err(match reason {
                        AbortReason::Watchdog { name } => {
                            RunError::WatchdogExpired { watchdog: name, at }
                        }
                        AbortReason::Fault { reason } => RunError::FaultAbort { reason, at },
                    });
                }
                if let Some(v) = st.invariant.take() {
                    let at = st.now;
                    return Err(RunError::InvariantViolation {
                        invariant: v.invariant,
                        subject: v.subject,
                        details: v.details,
                        at,
                    });
                }
                match next_step(&self.shared, &mut st) {
                    Step::Resume(_, cell, stall) => (cell, stall),
                    Step::Kernel => {
                        // No error is pending (just checked), so either the
                        // next timed activity lies beyond the horizon, or
                        // the run is quiescent.
                        if !st.timed.is_empty() {
                            return Ok(until);
                        }
                        if let Some(err) = st.stall_error() {
                            return Err(err);
                        }
                        return Ok(st.now);
                    }
                }
            };
            // Hand the token to the process: one atomic store (plus at most
            // one unpark). The state lock is released before either side
            // runs, and the kernel stays parked until the simulation needs
            // it again — possibly many scheduling steps later.
            if stall {
                // Chaos: widen the race window between the decision and
                // the token deposit (host-side only; the simulated
                // schedule is already fixed).
                std::thread::yield_now();
            }
            cell.set(TOK_GO);
            self.shared.kernel_cell.wait();
        }
    }

    /// Cancels every unfinished process and quiesces: waits until every
    /// process job dispatched to the worker pool has finished, so no
    /// pooled thread can touch this simulation's state afterwards. The
    /// workers themselves are *not* joined — they return to the pool for
    /// the next simulation. Idempotent.
    fn teardown(&mut self) {
        if self.torn_down {
            return;
        }
        self.torn_down = true;
        {
            let st = self.shared.state.lock();
            for p in &st.procs {
                if p.state != ProcState::Finished {
                    // Depositing `TOK_CANCEL` overwrites any stale `GO`
                    // token a panicked thread left unconsumed — exactly the
                    // case the old one-slot channel handled with `try_send`.
                    p.cell.set(TOK_CANCEL);
                }
            }
        }
        // A cancelled process unwinds via CancelUnwind, which the harness
        // catches; a panicked process already recorded its message. Either
        // way the job wrapper calls `wg.done()` on its way out.
        self.shared.wg.wait_zero();
        // Oracle hook: with the pool quiesced, no thread but this one can
        // touch the state — validate the post-drain invariants.
        let mut st = self.shared.state.lock();
        if st.oracle.is_some() {
            oracle_teardown(&self.shared, &mut st);
        }
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        self.teardown();
    }
}

impl core::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("Simulation")
            .field("now", &st.now)
            .field("processes", &st.procs.len())
            .field("live", &st.live_procs)
            .finish()
    }
}

fn alloc_event(st: &mut State) -> EventId {
    let id = EventId(u32::try_from(st.events.len()).expect("event ids exhausted"));
    st.events.push(EventEntry {
        alive: true,
        queued_gen: 0,
        wait_head: NIL,
        wait_tail: NIL,
    });
    id
}

/// Creates the process entry for `child` and dispatches its body to the
/// worker pool (recycling a parked thread when one is idle — no per-spawn
/// `thread::spawn`, no per-spawn name formatting). Caller holds the lock.
fn spawn_locked(
    shared: &Arc<Shared>,
    st: &mut State,
    child: Child,
    parent: Option<ProcessId>,
) -> ProcessId {
    let pid = ProcessId(u32::try_from(st.procs.len()).expect("process ids exhausted"));
    let cell = Arc::new(ParkCell::new());
    st.procs.push(ProcEntry {
        name: child.name.clone(),
        state: ProcState::Ready,
        cell: Arc::clone(&cell),
        parent,
        waiting_on: Vec::new(),
        wake_cause: None,
        wake_gen: 0,
    });
    st.live_procs += 1;
    st.ready.push_back(pid);
    st.note_ready_depth();
    st.stats.processes_spawned += 1;
    if st.trace_kernel {
        if let Some(t) = &st.trace {
            t.process_spawned(st.now, pid, &child.name);
        }
    }

    let ctx = ProcCtx {
        shared: Arc::clone(shared),
        pid,
        name: child.name.clone(),
        cell,
    };
    let body = child.body;
    // Teardown quiesces on the wait group instead of joining: `add` under
    // the lock (before the job can possibly run), `done` as the job's very
    // last action, after which the worker never touches this simulation.
    shared.wg.add(1);
    let wg_shared = Arc::clone(shared);
    let recycled = pool::dispatch(Box::new(move || {
        run_process(&ctx, body);
        wg_shared.wg.done();
    }));
    if recycled {
        st.stats.threads_recycled += 1;
    }
    pid
}

/// Drives one more scheduling decision as a process exits (consuming the
/// caller's state guard): hands the run token to the next process
/// directly, or wakes the kernel thread when it must take over (error
/// pending, quiescence, horizon). The exiting thread touches no
/// simulation state afterwards.
fn drive_after_exit(shared: &Arc<Shared>, mut st: crate::sync::MutexGuard<'_, State>) {
    let target = match next_step(shared, &mut st) {
        Step::Resume(_, cell, stall) => Some((cell, stall)),
        Step::Kernel => None,
    };
    drop(st);
    match target {
        Some((cell, stall)) => {
            if stall {
                std::thread::yield_now();
            }
            cell.set(TOK_GO);
        }
        None => shared.kernel_cell.set(TOK_GO),
    }
}

/// Pool-job harness: waits for the first token, runs the body, and performs
/// finish/panic bookkeeping.
fn run_process(ctx: &ProcCtx, body: ProcBody) {
    ctx.cell.register();
    if ctx.cell.wait() != TOK_GO {
        return; // TOK_CANCEL before first resume
    }
    let result = panic::catch_unwind(AssertUnwindSafe(|| body(ctx)));
    match result {
        Ok(()) => {
            let mut st = ctx.shared.state.lock();
            st.finish(ctx.pid);
            drive_after_exit(&ctx.shared, st);
        }
        Err(payload) => {
            // Note `&*payload`: coercing `&Box<dyn Any>` directly would wrap
            // the box itself and every downcast would fail.
            let payload: &(dyn std::any::Any + Send) = &*payload;
            if payload.downcast_ref::<CancelUnwind>().is_some() {
                // Cancelled: bookkeeping was done by the canceller (or by
                // teardown); just exit the thread.
                return;
            }
            if payload.downcast_ref::<MisuseUnwind>().is_some()
                || payload.downcast_ref::<AbortUnwind>().is_some()
                || payload.downcast_ref::<InvariantUnwind>().is_some()
            {
                // Misuse/abort/violation details were already stored in
                // kernel state by `ProcCtx::misuse` / `ProcCtx::abort_run`
                // / `ProcCtx::invariant_violation`; finish this process
                // and hand control back to the kernel, which will convert
                // the stored record into a structured `RunError`.
                let mut st = ctx.shared.state.lock();
                st.finish(ctx.pid);
                // The pending misuse/abort makes `next_step` bounce to the
                // kernel without resuming anything further.
                drive_after_exit(&ctx.shared, st);
                return;
            }
            let message = panic_message(payload);
            let mut st = ctx.shared.state.lock();
            if st.panic.is_none() {
                st.panic = Some((ctx.name.clone(), message));
            }
            st.finish(ctx.pid);
            drive_after_exit(&ctx.shared, st);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// ProcCtx
// ---------------------------------------------------------------------------

/// The execution context handed to every simulated process.
///
/// All suspension primitives (`wait*`, `waitfor`, `par`) must only be called
/// from the process's own thread, which is guaranteed when using the `&self`
/// reference passed to the process body.
pub struct ProcCtx {
    shared: Arc<Shared>,
    pid: ProcessId,
    name: String,
    /// This process's spin-then-park resume cell (shared with the kernel's
    /// `ProcEntry`).
    cell: Arc<ParkCell>,
}

impl core::fmt::Debug for ProcCtx {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ProcCtx")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .finish()
    }
}

impl ProcCtx {
    /// This process's id.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// This process's debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current simulated time. Lock-free: reads the kernel's atomic clock
    /// mirror (coherent because time only advances while no process runs).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.shared.load_now()
    }

    /// Appends a record to the attached trace (no-op without a trace).
    pub fn record(&self, kind: RecordKind) {
        let st = self.shared.state.lock();
        st.record(kind);
    }

    /// Returns the raw SLDL synchronization layer for building channels
    /// (see [`crate::channel`]).
    #[must_use]
    pub fn sync_layer(&self) -> crate::channel::SldlSync {
        crate::channel::SldlSync {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Allocates a fresh event.
    pub fn event_new(&self) -> EventId {
        alloc_event(&mut self.shared.state.lock())
    }

    /// Reports model misuse: stores the details (with the caller's source
    /// location) for the kernel to turn into [`RunError::ModelMisuse`] and
    /// unwinds this process. Never returns.
    #[track_caller]
    fn misuse(&self, error: ModelError) -> ! {
        let location = core::panic::Location::caller();
        let mut st = self.shared.state.lock();
        if st.misuse.is_none() {
            st.misuse = Some(Misuse {
                process: self.name.clone(),
                location: format!("{}:{}", location.file(), location.line()),
                error,
            });
        }
        drop(st);
        // `resume_unwind` (not `panic_any`) so the global panic hook does
        // not fire for this expected control-flow unwind.
        panic::resume_unwind(Box::new(MisuseUnwind));
    }

    /// Reports misuse of a higher-level model layer (e.g. the RTOS model)
    /// through the kernel's structured-error channel: the run fails with
    /// [`RunError::ModelMisuse`] carrying
    /// [`ModelError::Layer`] and the caller's
    /// source location. Never returns — this process unwinds, the
    /// simulation tears down cleanly and every other process is joined.
    #[track_caller]
    pub fn misuse_layer(&self, layer: impl Into<String>, message: impl Into<String>) -> ! {
        self.misuse(ModelError::Layer {
            layer: layer.into(),
            message: message.into(),
        })
    }

    /// Reports a broken invariant observed by a layer-level conformance
    /// hook (e.g. the RTOS model's scheduler checks): the run fails with
    /// [`RunError::InvariantViolation`] naming the invariant, `subject`
    /// (the offending process/event/task) and the observed state. Never
    /// returns — this process unwinds and the simulation tears down
    /// cleanly, exactly like [`misuse_layer`](ProcCtx::misuse_layer).
    pub fn invariant_violation(
        &self,
        invariant: &'static str,
        subject: impl Into<String>,
        details: impl Into<String>,
    ) -> ! {
        let mut st = self.shared.state.lock();
        if st.invariant.is_none() {
            st.invariant = Some(Violation {
                invariant,
                subject: subject.into(),
                details: details.into(),
            });
        }
        drop(st);
        panic::resume_unwind(Box::new(InvariantUnwind));
    }

    /// Aborts the whole run from inside the simulation: the run fails with
    /// [`RunError::WatchdogExpired`] or [`RunError::FaultAbort`] depending
    /// on `reason`. Never returns. Used by health monitors (e.g. the RTOS
    /// watchdog service) whose expiry action is to stop the run.
    pub fn abort_run(&self, reason: AbortReason) -> ! {
        let mut st = self.shared.state.lock();
        if st.abort.is_none() {
            st.abort = Some(reason);
        }
        drop(st);
        panic::resume_unwind(Box::new(AbortUnwind));
    }

    /// Applies the installed [`FaultPlan`]'s WCET jitter to a delay
    /// annotation, returning the (possibly stretched) delay and logging the
    /// injection. With no plan (or no jitter configured) this returns
    /// `requested` unchanged and draws no randomness.
    ///
    /// Model layers route *computation* delays through this hook before
    /// consuming them with [`waitfor`](ProcCtx::waitfor); pure passage of
    /// time (e.g. waiting out a periodic release) should not be perturbed.
    #[must_use]
    pub fn perturb_delay(&self, requested: Duration) -> Duration {
        let mut st = self.shared.state.lock();
        let Some(mut f) = st.faults.take() else {
            return requested;
        };
        let now = st.now;
        let injected = f.perturb_delay(now, &self.name, requested);
        st.faults = Some(f);
        injected
    }

    /// Deletes an event. Processes still waiting on it will never be woken
    /// by it again (they appear in [`Report::blocked`] unless woken
    /// otherwise).
    ///
    /// # Errors
    ///
    /// Deleting an unknown or already-deleted event is model misuse: this
    /// process stops and the run fails with [`RunError::ModelMisuse`].
    #[track_caller]
    pub fn event_del(&self, event: EventId) {
        let mut st = self.shared.state.lock();
        match st.events.get(event.index()).map(|e| e.alive) {
            None => {
                drop(st);
                self.misuse(ModelError::EventNeverCreated { event });
            }
            Some(false) => {
                drop(st);
                self.misuse(ModelError::EventDeletedTwice { event });
            }
            Some(true) => st.events[event.index()].alive = false,
        }
    }

    /// Notifies `event` for the current delta cycle: every process waiting
    /// on it when the running processes of this delta have all yielded will
    /// resume; then the notification expires (SpecC `notify` semantics).
    ///
    /// If a [`FaultPlan`] with notification faults is installed, the
    /// notification may be silently dropped (a lost interrupt) or
    /// duplicated into a later delta of the same time step (a
    /// double-latched interrupt); injections are logged in
    /// [`Report::faults`].
    ///
    /// # Errors
    ///
    /// Notifying a deleted event is model misuse: this process stops and
    /// the run fails with [`RunError::ModelMisuse`].
    #[track_caller]
    pub fn notify(&self, event: EventId) {
        let mut st = self.shared.state.lock();
        if !st.event_alive(event) {
            drop(st);
            self.misuse(ModelError::NotifyDeadEvent { event });
        }
        // Fault hook: decide the notification's fate. `st.faults` is `None`
        // unless a non-empty plan was armed.
        if let Some(mut f) = st.faults.take() {
            let now = st.now;
            let fate = f.notify_fate(now, event);
            st.faults = Some(f);
            match fate {
                NotifyFate::Drop => {
                    // Test-only injected kernel bug (`chaos-bug` feature,
                    // armed only when a chaos plan is active): a dropped
                    // notification regresses the delta-stamp clock,
                    // silently corrupting the O(1) dedup. `bench --bin
                    // chaos` must find this via the invariant oracle and
                    // shrink it to a minimal repro.
                    #[cfg(feature = "chaos-bug")]
                    if st.chaos.is_some() {
                        st.delta_gen = st.delta_gen.saturating_sub(1);
                    }
                    return;
                }
                NotifyFate::Duplicate => {
                    // Re-deliver in a later delta at the same timestamp via
                    // a zero-delay timed notification.
                    let time = st.now;
                    st.push_timed(time, TimedKind::Notify(event));
                }
                NotifyFate::Deliver => {}
            }
        }
        st.record_kernel(CompactKind::EventNotified { event });
        if st.queue_notify(event) {
            st.stats.events_notified += 1;
        }
    }

    /// Schedules a notification of `event` to occur `delay` from now
    /// (SpecC timed `notify`). A zero delay notifies in the next delta of
    /// the current time step.
    pub fn notify_delayed(&self, event: EventId, delay: Duration) {
        let mut st = self.shared.state.lock();
        let time = st.now + delay;
        st.push_timed(time, TimedKind::Notify(event));
    }

    /// Suspends until `event` is notified.
    ///
    /// # Errors
    ///
    /// Waiting on a deleted event is model misuse: this process stops and
    /// the run fails with [`RunError::ModelMisuse`].
    #[track_caller]
    pub fn wait(&self, event: EventId) {
        let woke = self.wait_any(&[event]);
        debug_assert_eq!(woke, event);
    }

    /// Suspends until any of `events` is notified, returning the event that
    /// woke this process. If several of them fire in the same delta, the
    /// earliest-notified one is reported.
    ///
    /// # Errors
    ///
    /// Passing an empty set or a deleted event is model misuse: this
    /// process stops and the run fails with [`RunError::ModelMisuse`].
    #[track_caller]
    pub fn wait_any(&self, events: &[EventId]) -> EventId {
        if events.is_empty() {
            self.misuse(ModelError::WaitEmptySet);
        }
        self.block_on_events(events, None)
            .expect("no timeout was set")
    }

    /// Suspends until `event` is notified or `timeout` elapses.
    ///
    /// Returns `Some(event)` if the event fired, `None` on timeout.
    ///
    /// # Errors
    ///
    /// Waiting on a deleted event is model misuse: this process stops and
    /// the run fails with [`RunError::ModelMisuse`].
    #[track_caller]
    pub fn wait_timeout(&self, event: EventId, timeout: Duration) -> Option<EventId> {
        self.block_on_events(&[event], Some(timeout))
    }

    #[track_caller]
    fn block_on_events(&self, events: &[EventId], timeout: Option<Duration>) -> Option<EventId> {
        {
            let mut st = self.shared.state.lock();
            // Validate the whole set before registering anything, so misuse
            // leaves no stale waiter entries behind.
            for &e in events {
                if !st.event_alive(e) {
                    drop(st);
                    self.misuse(ModelError::WaitDeadEvent { event: e });
                }
            }
            let mut nodes = std::mem::take(&mut st.procs[self.pid.index()].waiting_on);
            debug_assert!(nodes.is_empty());
            for &e in events {
                nodes.push(st.link_waiter(e, self.pid));
            }
            let entry = &mut st.procs[self.pid.index()];
            entry.state = ProcState::WaitEvent;
            entry.waiting_on = nodes;
            entry.wake_cause = None;
            if let Some(d) = timeout {
                let gen = st.procs[self.pid.index()].wake_gen;
                let time = st.now + d;
                st.push_timed(time, TimedKind::Wake { pid: self.pid, gen });
            }
            st.stats.processes_suspended += 1;
            st.record_kernel(CompactKind::ProcessSuspended {
                pid: self.pid,
                reason: SuspendReason::WaitEvent,
            });
        }
        self.yield_to_kernel();
        self.shared.state.lock().procs[self.pid.index()].wake_cause
    }

    /// Suspends for `delay` of simulated time (the SLDL `waitfor`).
    ///
    /// `waitfor(Duration::ZERO)` suspends until all remaining delta cycles
    /// of the current time step have been processed.
    pub fn waitfor(&self, delay: Duration) {
        {
            let mut st = self.shared.state.lock();
            let gen = st.procs[self.pid.index()].wake_gen;
            let time = st.now + delay;
            st.push_timed(time, TimedKind::Wake { pid: self.pid, gen });
            let entry = &mut st.procs[self.pid.index()];
            entry.state = ProcState::WaitTime;
            entry.wake_cause = None;
            st.stats.processes_suspended += 1;
            st.record_kernel(CompactKind::ProcessSuspended {
                pid: self.pid,
                reason: SuspendReason::WaitTime,
            });
        }
        self.yield_to_kernel();
    }

    /// Runs `children` in parallel and suspends until **all** of them have
    /// finished (the SLDL `par` composition).
    ///
    /// An empty list returns immediately.
    pub fn par(&self, children: Vec<Child>) {
        if children.is_empty() {
            return;
        }
        {
            let mut st = self.shared.state.lock();
            let n = children.len();
            for child in children {
                spawn_locked(&self.shared, &mut st, child, Some(self.pid));
            }
            st.procs[self.pid.index()].state = ProcState::Joining { pending: n };
            st.stats.processes_suspended += 1;
            st.record_kernel(CompactKind::ProcessSuspended {
                pid: self.pid,
                reason: SuspendReason::Join,
            });
        }
        self.yield_to_kernel();
    }

    /// Spawns a detached process (fire-and-forget), returning its id.
    ///
    /// The new process becomes ready in the current delta cycle.
    pub fn spawn(&self, child: Child) -> ProcessId {
        let mut st = self.shared.state.lock();
        spawn_locked(&self.shared, &mut st, child, None)
    }

    /// Cancels a *blocked* process: it is treated as finished (par-joins on
    /// it complete) and its thread unwinds without running the rest of its
    /// body. Used to model OS-level `task_kill`.
    ///
    /// Cancelling an already-finished process is a no-op.
    ///
    /// # Errors
    ///
    /// Cancelling this process itself (finish by returning instead) or the
    /// currently running process (impossible for well-formed
    /// single-processor models) is model misuse: this process stops and
    /// the run fails with [`RunError::ModelMisuse`].
    #[track_caller]
    pub fn cancel(&self, pid: ProcessId) {
        if pid == self.pid {
            self.misuse(ModelError::CancelSelf { pid });
        }
        let mut st = self.shared.state.lock();
        match st.procs[pid.index()].state {
            ProcState::Finished => return,
            ProcState::Running => {
                drop(st);
                self.misuse(ModelError::CancelRunning { pid });
            }
            _ => {}
        }
        let entry = &mut st.procs[pid.index()];
        entry.wake_gen += 1; // invalidate stale timed wake-ups
        let cell = Arc::clone(&entry.cell);
        while let Some(idx) = st.procs[pid.index()].waiting_on.pop() {
            st.unlink_waiter(idx);
        }
        st.ready.retain(|&p| p != pid);
        st.finish(pid);
        drop(st);
        // Wake the thread so it can unwind; it will not touch kernel state
        // (the cancel token makes `yield_to_kernel` resume-unwind).
        cell.set(TOK_CANCEL);
    }

    /// Yields to the kernel and blocks until resumed.
    ///
    /// # Panics (internal)
    ///
    /// Unwinds with a cancellation payload if the simulation is torn down
    /// while this process is blocked.
    fn yield_to_kernel(&self) {
        // Direct handoff: this thread drives the scheduler itself. Three
        // outcomes, cheapest first: (a) this process is its own successor
        // — keep running, zero context switches; (b) another process is
        // next — pass the token straight to it, one switch, kernel stays
        // asleep; (c) the kernel is needed — wake it. A chaos stall
        // disables shortcut (a): the token round-trips through this
        // process's own cell, exercising the set-then-wait slow path.
        let target = {
            let mut st = self.shared.state.lock();
            match next_step(&self.shared, &mut st) {
                Step::Resume(pid, _, false) if pid == self.pid => return,
                Step::Resume(_, cell, stall) => Some((cell, stall)),
                Step::Kernel => None,
            }
        };
        match target {
            Some((cell, stall)) => {
                if stall {
                    std::thread::yield_now();
                }
                cell.set(TOK_GO);
            }
            None => self.shared.kernel_cell.set(TOK_GO),
        }
        if self.cell.wait() != TOK_GO {
            // `resume_unwind` (not `panic_any`) so the global panic hook
            // does not fire for this expected control-flow unwind.
            panic::resume_unwind(Box::new(CancelUnwind));
        }
    }
}
