//! The discrete-event simulation kernel.
//!
//! Semantics follow the SpecC/SystemC family of system-level design
//! languages, which the RTOS model of the reproduced paper is layered on:
//!
//! * **Processes** are imperative bodies (closures) that suspend themselves
//!   with [`ProcCtx::wait`] / [`ProcCtx::waitfor`] and compose with
//!   [`ProcCtx::par`] fork/join.
//! * **Events** are pure synchronization points. [`ProcCtx::notify`] marks an
//!   event as notified for the *current delta cycle*; all processes waiting
//!   on it at the end of that delta resume, then the notification expires.
//! * **Time** advances in discrete steps to the earliest pending timed
//!   wake-up once no ready process and no pending notification remains.
//!
//! Each process runs on its own OS thread, but the kernel enforces that at
//! most one process executes at any host instant by strict token passing, so
//! simulations are sequential and deterministic — the same co-routine model
//! used by the SpecC reference simulator.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::error::RunError;
use crate::ids::{EventId, ProcessId};
use crate::time::SimTime;
use crate::trace::{RecordKind, SuspendReason, TraceConfig, TraceHandle};

/// A process body: runs once on its own thread with a [`ProcCtx`].
pub type ProcBody = Box<dyn FnOnce(&ProcCtx) + Send + 'static>;

/// A named child process description for [`ProcCtx::par`],
/// [`ProcCtx::spawn`] and [`Simulation::spawn`].
///
/// ```
/// use sldl_sim::{Child, Simulation};
///
/// let mut sim = Simulation::new();
/// sim.spawn(Child::new("hello", |_ctx| {}));
/// let report = sim.run().unwrap();
/// assert!(report.blocked.is_empty());
/// ```
pub struct Child {
    pub(crate) name: String,
    pub(crate) body: ProcBody,
}

impl Child {
    /// Creates a child process description with a debug `name`.
    pub fn new(name: impl Into<String>, body: impl FnOnce(&ProcCtx) + Send + 'static) -> Self {
        Child {
            name: name.into(),
            body: Box::new(body),
        }
    }

    /// The child's debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Consumes the child, returning its body — useful for executors that
    /// wrap a process body with extra setup/teardown.
    #[must_use]
    pub fn into_body(self) -> ProcBody {
        self.body
    }
}

impl core::fmt::Debug for Child {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Child").field("name", &self.name).finish()
    }
}

/// Outcome of a completed simulation run.
///
/// Like SpecC/SystemC, a simulation ends *normally* when no ready process,
/// pending notification, or timed wake-up remains — even if some processes
/// are still blocked (server loops waiting for events that will never come
/// are a normal modeling idiom). Such processes are listed in [`blocked`].
///
/// [`blocked`]: Report::blocked
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// Names of processes that never finished (blocked at end of run).
    pub blocked: Vec<String>,
}

// ---------------------------------------------------------------------------
// Kernel state
// ---------------------------------------------------------------------------

/// Resume token handed to a process thread.
enum Token {
    /// Run until the next suspension point.
    Go,
    /// Unwind and exit: the simulation is being torn down or the process was
    /// cancelled.
    Cancel,
}

/// Payload used to unwind a cancelled process thread.
struct CancelUnwind;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Ready,
    Running,
    /// Waiting for one of the events listed in `ProcEntry::waiting_on`.
    WaitEvent,
    /// Waiting for a timed wake-up.
    WaitTime,
    /// Waiting for `pending` par-children to finish.
    Joining { pending: usize },
    Finished,
}

struct ProcEntry {
    name: String,
    state: ProcState,
    resume_tx: Sender<Token>,
    handle: Option<JoinHandle<()>>,
    /// Parent joining on this process through `par`, if any.
    parent: Option<ProcessId>,
    /// Events this process is currently registered on (for `wait_any`).
    waiting_on: Vec<EventId>,
    /// The event that woke this process, for `wait_any`/`wait_timeout`.
    wake_cause: Option<EventId>,
    /// Invalidates stale timed wake-ups after an event-based wake.
    wake_gen: u64,
    /// Set by `ProcCtx::cancel`: the thread must unwind without touching
    /// kernel state (bookkeeping was already done by the canceller).
    cancelled: bool,
}

#[derive(Debug, Clone, Copy)]
enum TimedKind {
    Wake { pid: ProcessId, gen: u64 },
    Notify(EventId),
}

struct TimedEntry {
    time: SimTime,
    seq: u64,
    kind: TimedKind,
}

impl PartialEq for TimedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for TimedEntry {}
impl PartialOrd for TimedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimedEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct State {
    now: SimTime,
    procs: Vec<ProcEntry>,
    ready: VecDeque<ProcessId>,
    timed: BinaryHeap<TimedEntry>,
    seq: u64,
    /// Events notified in the current delta cycle, in notification order.
    notified: Vec<EventId>,
    waiters: HashMap<EventId, Vec<ProcessId>>,
    event_alive: Vec<bool>,
    live_procs: usize,
    panic: Option<(String, String)>,
    trace: Option<TraceHandle>,
    trace_kernel: bool,
}

impl State {
    fn record(&self, kind: RecordKind) {
        if let Some(t) = &self.trace {
            t.record(self.now, kind);
        }
    }

    fn record_kernel(&self, kind: RecordKind) {
        if self.trace_kernel {
            self.record(kind);
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Moves a blocked process to the ready queue.
    fn wake(&mut self, pid: ProcessId, cause: Option<EventId>) {
        let entry = &mut self.procs[pid.index()];
        debug_assert!(matches!(
            entry.state,
            ProcState::WaitEvent | ProcState::WaitTime
        ));
        entry.state = ProcState::Ready;
        entry.wake_cause = cause;
        entry.wake_gen += 1;
        let waiting = std::mem::take(&mut entry.waiting_on);
        for e in waiting {
            if let Some(ws) = self.waiters.get_mut(&e) {
                ws.retain(|&p| p != pid);
            }
        }
        self.ready.push_back(pid);
    }

    /// Marks `pid` finished and propagates par-join bookkeeping.
    fn finish(&mut self, pid: ProcessId) {
        let entry = &mut self.procs[pid.index()];
        if entry.state == ProcState::Finished {
            return;
        }
        entry.state = ProcState::Finished;
        self.live_procs -= 1;
        let parent = entry.parent.take();
        self.record_kernel(RecordKind::ProcessFinished { pid });
        if let Some(parent) = parent {
            let pentry = &mut self.procs[parent.index()];
            if let ProcState::Joining { pending } = &mut pentry.state {
                *pending -= 1;
                if *pending == 0 {
                    pentry.state = ProcState::Ready;
                    self.ready.push_back(parent);
                }
            }
        }
    }
}

pub(crate) struct Shared {
    state: Mutex<State>,
    /// Processes ping the kernel here after updating their state.
    kernel_tx: Sender<()>,
}

impl Shared {
    /// Allocates an event (used by `SldlSync` so channels can be built
    /// outside of a running process).
    pub(crate) fn alloc_event(&self) -> EventId {
        alloc_event(&mut self.state.lock())
    }
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

/// Owner of a discrete-event simulation: spawn root processes, create
/// events, then [`run`](Simulation::run).
///
/// ```
/// use sldl_sim::{Child, Simulation};
/// use std::time::Duration;
///
/// let mut sim = Simulation::new();
/// sim.spawn(Child::new("main", |ctx| {
///     ctx.waitfor(Duration::from_micros(500));
///     assert_eq!(ctx.now().as_micros(), 500);
/// }));
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time.as_micros(), 500);
/// ```
pub struct Simulation {
    shared: Arc<Shared>,
    kernel_rx: Receiver<()>,
    torn_down: bool,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    #[must_use]
    pub fn new() -> Self {
        let (kernel_tx, kernel_rx) = unbounded();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                now: SimTime::ZERO,
                procs: Vec::new(),
                ready: VecDeque::new(),
                timed: BinaryHeap::new(),
                seq: 0,
                notified: Vec::new(),
                waiters: HashMap::new(),
                event_alive: Vec::new(),
                live_procs: 0,
                panic: None,
                trace: None,
                trace_kernel: false,
            }),
            kernel_tx,
        });
        Simulation {
            shared,
            kernel_rx,
            torn_down: false,
        }
    }

    /// Attaches a trace recorder and returns a handle for later analysis.
    ///
    /// Call before [`run`](Simulation::run); records produced by processes
    /// via [`ProcCtx::record`] and (if enabled) by the kernel are appended
    /// to the returned handle.
    pub fn enable_trace(&mut self, config: TraceConfig) -> TraceHandle {
        let handle = TraceHandle::new();
        let mut st = self.shared.state.lock();
        st.trace = Some(handle.clone());
        st.trace_kernel = config.kernel_records;
        handle
    }

    /// Allocates a fresh event before the simulation starts.
    pub fn event_new(&mut self) -> EventId {
        alloc_event(&mut self.shared.state.lock())
    }

    /// Returns the raw SLDL synchronization layer for building channels
    /// (see [`crate::channel`]).
    #[must_use]
    pub fn sync_layer(&self) -> crate::channel::SldlSync {
        crate::channel::SldlSync {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Spawns a root process, ready at time zero.
    ///
    /// Returns the new process's id.
    pub fn spawn(&mut self, child: Child) -> ProcessId {
        let mut st = self.shared.state.lock();
        spawn_locked(&self.shared, &mut st, child, None)
    }

    /// Runs the simulation until no activity remains.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ProcessPanicked`] if any simulated process
    /// panicked; the simulation is torn down in that case.
    pub fn run(self) -> Result<Report, RunError> {
        self.run_until(SimTime::MAX)
    }

    /// Runs the simulation, stopping once the next timed activity would be
    /// later than `until` (pending work at earlier times is completed).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ProcessPanicked`] if any simulated process
    /// panicked.
    pub fn run_until(mut self, until: SimTime) -> Result<Report, RunError> {
        let result = self.run_loop(until);
        self.teardown();
        match result {
            Err(e) => Err(e),
            Ok(end_time) => {
                let st = self.shared.state.lock();
                let blocked = st
                    .procs
                    .iter()
                    .filter(|p| p.state != ProcState::Finished)
                    .map(|p| p.name.clone())
                    .collect();
                Ok(Report { end_time, blocked })
            }
        }
    }

    fn run_loop(&mut self, until: SimTime) -> Result<SimTime, RunError> {
        loop {
            let action = {
                let mut st = self.shared.state.lock();
                if let Some((process, message)) = st.panic.take() {
                    return Err(RunError::ProcessPanicked { process, message });
                }
                if let Some(pid) = st.ready.pop_front() {
                    let entry = &mut st.procs[pid.index()];
                    entry.state = ProcState::Running;
                    let tx = entry.resume_tx.clone();
                    st.record_kernel(RecordKind::ProcessResumed { pid });
                    Some(tx)
                } else if !st.notified.is_empty() {
                    // Delta boundary: deliver notifications in order.
                    let notified = std::mem::take(&mut st.notified);
                    for e in notified {
                        if let Some(ws) = st.waiters.remove(&e) {
                            for pid in ws {
                                // A waiter may already have been woken by an
                                // earlier event in this same delta.
                                if st.procs[pid.index()].state == ProcState::WaitEvent {
                                    st.wake(pid, Some(e));
                                }
                            }
                        }
                    }
                    None
                } else if let Some(top) = st.timed.peek() {
                    if top.time > until {
                        return Ok(until);
                    }
                    let now = top.time;
                    st.now = now;
                    while let Some(top) = st.timed.peek() {
                        if top.time != now {
                            break;
                        }
                        let entry = st.timed.pop().expect("peeked entry");
                        match entry.kind {
                            TimedKind::Wake { pid, gen } => {
                                let p = &st.procs[pid.index()];
                                let fresh = p.wake_gen == gen
                                    && matches!(
                                        p.state,
                                        ProcState::WaitTime | ProcState::WaitEvent
                                    );
                                if fresh {
                                    st.wake(pid, None);
                                }
                            }
                            TimedKind::Notify(e) => {
                                if st.event_alive.get(e.index()) == Some(&true) {
                                    st.record_kernel(RecordKind::EventNotified { event: e });
                                    st.notified.push(e);
                                }
                            }
                        }
                    }
                    None
                } else {
                    return Ok(st.now);
                }
            };
            if let Some(tx) = action {
                // Hand the token to the process and wait for it to yield.
                tx.send(Token::Go).expect("process thread alive");
                self.kernel_rx.recv().expect("process thread pings kernel");
            }
        }
    }

    /// Cancels and joins every unfinished process thread. Idempotent.
    fn teardown(&mut self) {
        if self.torn_down {
            return;
        }
        self.torn_down = true;
        let mut handles = Vec::new();
        {
            let mut st = self.shared.state.lock();
            let ids: Vec<usize> = (0..st.procs.len()).collect();
            for i in ids {
                let alive = st.procs[i].state != ProcState::Finished;
                if alive {
                    st.procs[i].cancelled = true;
                    // Ignore send failure: the thread may have exited after a
                    // panic without consuming its token.
                    let _ = st.procs[i].resume_tx.send(Token::Cancel);
                }
                if let Some(h) = st.procs[i].handle.take() {
                    handles.push(h);
                }
            }
        }
        for h in handles {
            // A cancelled process unwinds via CancelUnwind, which the harness
            // catches; a panicked process already recorded its message.
            let _ = h.join();
        }
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        self.teardown();
    }
}

impl core::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("Simulation")
            .field("now", &st.now)
            .field("processes", &st.procs.len())
            .field("live", &st.live_procs)
            .finish()
    }
}

fn alloc_event(st: &mut State) -> EventId {
    let id = EventId(u32::try_from(st.event_alive.len()).expect("event ids exhausted"));
    st.event_alive.push(true);
    id
}

/// Creates the process entry and thread for `child`. Caller holds the lock.
fn spawn_locked(
    shared: &Arc<Shared>,
    st: &mut State,
    child: Child,
    parent: Option<ProcessId>,
) -> ProcessId {
    let pid = ProcessId(u32::try_from(st.procs.len()).expect("process ids exhausted"));
    let (resume_tx, resume_rx) = bounded(1);
    st.procs.push(ProcEntry {
        name: child.name.clone(),
        state: ProcState::Ready,
        resume_tx,
        handle: None,
        parent,
        waiting_on: Vec::new(),
        wake_cause: None,
        wake_gen: 0,
        cancelled: false,
    });
    st.live_procs += 1;
    st.ready.push_back(pid);
    st.record_kernel(RecordKind::ProcessSpawned {
        pid,
        name: child.name.clone(),
    });

    let ctx = ProcCtx {
        shared: Arc::clone(shared),
        pid,
        name: child.name.clone(),
        resume_rx,
    };
    let body = child.body;
    let handle = std::thread::Builder::new()
        .name(format!("sim-{}", child.name))
        .spawn(move || run_process(ctx, body))
        .expect("spawn simulation process thread");
    st.procs[pid.index()].handle = Some(handle);
    pid
}

/// Thread harness: waits for the first token, runs the body, and performs
/// finish/panic bookkeeping.
fn run_process(ctx: ProcCtx, body: ProcBody) {
    match ctx.resume_rx.recv() {
        Ok(Token::Go) => {}
        Ok(Token::Cancel) | Err(_) => return,
    }
    let result = panic::catch_unwind(AssertUnwindSafe(|| body(&ctx)));
    match result {
        Ok(()) => {
            let mut st = ctx.shared.state.lock();
            st.finish(ctx.pid);
            drop(st);
            let _ = ctx.shared.kernel_tx.send(());
        }
        Err(payload) => {
            // Note `&*payload`: coercing `&Box<dyn Any>` directly would wrap
            // the box itself and every downcast would fail.
            let payload: &(dyn std::any::Any + Send) = &*payload;
            if payload.downcast_ref::<CancelUnwind>().is_some() {
                // Cancelled: bookkeeping was done by the canceller (or by
                // teardown); just exit the thread.
                return;
            }
            let message = panic_message(payload);
            let mut st = ctx.shared.state.lock();
            if st.panic.is_none() {
                st.panic = Some((ctx.name.clone(), message));
            }
            st.finish(ctx.pid);
            drop(st);
            let _ = ctx.shared.kernel_tx.send(());
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// ProcCtx
// ---------------------------------------------------------------------------

/// The execution context handed to every simulated process.
///
/// All suspension primitives (`wait*`, `waitfor`, `par`) must only be called
/// from the process's own thread, which is guaranteed when using the `&self`
/// reference passed to the process body.
pub struct ProcCtx {
    shared: Arc<Shared>,
    pid: ProcessId,
    name: String,
    resume_rx: Receiver<Token>,
}

impl core::fmt::Debug for ProcCtx {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ProcCtx")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .finish()
    }
}

impl ProcCtx {
    /// This process's id.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// This process's debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// Appends a record to the attached trace (no-op without a trace).
    pub fn record(&self, kind: RecordKind) {
        let st = self.shared.state.lock();
        st.record(kind);
    }

    /// Returns the raw SLDL synchronization layer for building channels
    /// (see [`crate::channel`]).
    #[must_use]
    pub fn sync_layer(&self) -> crate::channel::SldlSync {
        crate::channel::SldlSync {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Allocates a fresh event.
    pub fn event_new(&self) -> EventId {
        alloc_event(&mut self.shared.state.lock())
    }

    /// Deletes an event. Processes still waiting on it will never be woken
    /// by it again (they appear in [`Report::blocked`] unless woken
    /// otherwise).
    ///
    /// # Panics
    ///
    /// Panics if the event was already deleted.
    pub fn event_del(&self, event: EventId) {
        let mut st = self.shared.state.lock();
        let alive = st
            .event_alive
            .get_mut(event.index())
            .unwrap_or_else(|| panic!("{event} was never created"));
        assert!(*alive, "{event} deleted twice");
        *alive = false;
    }

    /// Notifies `event` for the current delta cycle: every process waiting
    /// on it when the running processes of this delta have all yielded will
    /// resume; then the notification expires (SpecC `notify` semantics).
    ///
    /// # Panics
    ///
    /// Panics if `event` has been deleted.
    pub fn notify(&self, event: EventId) {
        let mut st = self.shared.state.lock();
        assert!(
            st.event_alive.get(event.index()) == Some(&true),
            "notify on dead {event}"
        );
        st.record_kernel(RecordKind::EventNotified { event });
        if !st.notified.contains(&event) {
            st.notified.push(event);
        }
    }

    /// Schedules a notification of `event` to occur `delay` from now
    /// (SpecC timed `notify`). A zero delay notifies in the next delta of
    /// the current time step.
    pub fn notify_delayed(&self, event: EventId, delay: Duration) {
        let mut st = self.shared.state.lock();
        let time = st.now + delay;
        let seq = st.next_seq();
        st.timed.push(TimedEntry {
            time,
            seq,
            kind: TimedKind::Notify(event),
        });
    }

    /// Suspends until `event` is notified.
    ///
    /// # Panics
    ///
    /// Panics if `event` has been deleted.
    pub fn wait(&self, event: EventId) {
        let woke = self.wait_any(&[event]);
        debug_assert_eq!(woke, event);
    }

    /// Suspends until any of `events` is notified, returning the event that
    /// woke this process. If several of them fire in the same delta, the
    /// earliest-notified one is reported.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty or contains a deleted event.
    pub fn wait_any(&self, events: &[EventId]) -> EventId {
        assert!(!events.is_empty(), "wait_any on empty event set");
        self.block_on_events(events, None)
            .expect("no timeout was set")
    }

    /// Suspends until `event` is notified or `timeout` elapses.
    ///
    /// Returns `Some(event)` if the event fired, `None` on timeout.
    pub fn wait_timeout(&self, event: EventId, timeout: Duration) -> Option<EventId> {
        self.block_on_events(&[event], Some(timeout))
    }

    fn block_on_events(&self, events: &[EventId], timeout: Option<Duration>) -> Option<EventId> {
        {
            let mut st = self.shared.state.lock();
            for &e in events {
                assert!(
                    st.event_alive.get(e.index()) == Some(&true),
                    "wait on dead {e}"
                );
                st.waiters.entry(e).or_default().push(self.pid);
            }
            let entry = &mut st.procs[self.pid.index()];
            entry.state = ProcState::WaitEvent;
            entry.waiting_on = events.to_vec();
            entry.wake_cause = None;
            if let Some(d) = timeout {
                let gen = st.procs[self.pid.index()].wake_gen;
                let time = st.now + d;
                let seq = st.next_seq();
                st.timed.push(TimedEntry {
                    time,
                    seq,
                    kind: TimedKind::Wake {
                        pid: self.pid,
                        gen,
                    },
                });
            }
            st.record_kernel(RecordKind::ProcessSuspended {
                pid: self.pid,
                reason: SuspendReason::WaitEvent,
            });
        }
        self.yield_to_kernel();
        self.shared.state.lock().procs[self.pid.index()].wake_cause
    }

    /// Suspends for `delay` of simulated time (the SLDL `waitfor`).
    ///
    /// `waitfor(Duration::ZERO)` suspends until all remaining delta cycles
    /// of the current time step have been processed.
    pub fn waitfor(&self, delay: Duration) {
        {
            let mut st = self.shared.state.lock();
            let gen = st.procs[self.pid.index()].wake_gen;
            let time = st.now + delay;
            let seq = st.next_seq();
            st.timed.push(TimedEntry {
                time,
                seq,
                kind: TimedKind::Wake {
                    pid: self.pid,
                    gen,
                },
            });
            let entry = &mut st.procs[self.pid.index()];
            entry.state = ProcState::WaitTime;
            entry.wake_cause = None;
            st.record_kernel(RecordKind::ProcessSuspended {
                pid: self.pid,
                reason: SuspendReason::WaitTime,
            });
        }
        self.yield_to_kernel();
    }

    /// Runs `children` in parallel and suspends until **all** of them have
    /// finished (the SLDL `par` composition).
    ///
    /// An empty list returns immediately.
    pub fn par(&self, children: Vec<Child>) {
        if children.is_empty() {
            return;
        }
        {
            let mut st = self.shared.state.lock();
            let n = children.len();
            for child in children {
                spawn_locked(&self.shared, &mut st, child, Some(self.pid));
            }
            st.procs[self.pid.index()].state = ProcState::Joining { pending: n };
            st.record_kernel(RecordKind::ProcessSuspended {
                pid: self.pid,
                reason: SuspendReason::Join,
            });
        }
        self.yield_to_kernel();
    }

    /// Spawns a detached process (fire-and-forget), returning its id.
    ///
    /// The new process becomes ready in the current delta cycle.
    pub fn spawn(&self, child: Child) -> ProcessId {
        let mut st = self.shared.state.lock();
        spawn_locked(&self.shared, &mut st, child, None)
    }

    /// Cancels a *blocked* process: it is treated as finished (par-joins on
    /// it complete) and its thread unwinds without running the rest of its
    /// body. Used to model OS-level `task_kill`.
    ///
    /// Cancelling an already-finished process is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is this process itself (finish by returning instead)
    /// or if the target is currently running (impossible for well-formed
    /// single-processor models).
    pub fn cancel(&self, pid: ProcessId) {
        assert_ne!(pid, self.pid, "a process cannot cancel itself");
        let mut st = self.shared.state.lock();
        let entry = &mut st.procs[pid.index()];
        match entry.state {
            ProcState::Finished => return,
            ProcState::Running => panic!("cannot cancel the running process {pid}"),
            _ => {}
        }
        entry.cancelled = true;
        entry.wake_gen += 1; // invalidate stale timed wake-ups
        let waiting = std::mem::take(&mut entry.waiting_on);
        let tx = entry.resume_tx.clone();
        for e in waiting {
            if let Some(ws) = st.waiters.get_mut(&e) {
                ws.retain(|&p| p != pid);
            }
        }
        st.ready.retain(|&p| p != pid);
        st.finish(pid);
        drop(st);
        // Wake the thread so it can unwind; it will not touch kernel state.
        let _ = tx.send(Token::Cancel);
    }

    /// Yields to the kernel and blocks until resumed.
    ///
    /// # Panics (internal)
    ///
    /// Unwinds with a cancellation payload if the simulation is torn down
    /// while this process is blocked.
    fn yield_to_kernel(&self) {
        self.shared
            .kernel_tx
            .send(())
            .expect("kernel receiver alive");
        match self.resume_rx.recv() {
            Ok(Token::Go) => {}
            Ok(Token::Cancel) | Err(_) => {
                // `resume_unwind` (not `panic_any`) so the global panic hook
                // does not fire for this expected control-flow unwind.
                panic::resume_unwind(Box::new(CancelUnwind));
            }
        }
    }
}
