//! Communication channels built purely on events.
//!
//! Channels are generic over a [`SyncLayer`]: the specification model uses
//! [`SldlSync`] (raw kernel events), and the RTOS model of the reproduced
//! paper substitutes its own event service — *exactly* the refinement of
//! Figure 7: "existing SLDL channels are reused by refining their internal
//! synchronization primitives to map to corresponding RTOS calls".

use std::collections::VecDeque;
use std::sync::Arc;

use crate::sync::Mutex;

use crate::ids::EventId;
use crate::kernel::ProcCtx;

/// A synchronization service that channels are written against.
///
/// Implemented by [`SldlSync`] (raw SLDL events) and by the RTOS model
/// (`rtos-model::Rtos`), so the same channel code runs unmodified in both
/// the specification and the architecture model.
pub trait SyncLayer: Clone + Send + Sync + 'static {
    /// Handle type for this layer's events.
    type Ev: Copy + core::fmt::Debug + Send;

    /// Allocates a fresh event in this layer.
    fn ev_new(&self) -> Self::Ev;

    /// Blocks the calling process until `e` is notified.
    fn ev_wait(&self, ctx: &ProcCtx, e: Self::Ev);

    /// Notifies `e`, waking all processes blocked on it.
    fn ev_notify(&self, ctx: &ProcCtx, e: Self::Ev);
}

/// The raw SLDL synchronization layer: kernel events with delta-cycle
/// semantics. Obtained from [`Simulation::sync_layer`] or
/// [`ProcCtx::sync_layer`].
///
/// [`Simulation::sync_layer`]: crate::Simulation::sync_layer
/// [`ProcCtx::sync_layer`]: crate::ProcCtx::sync_layer
#[derive(Clone)]
pub struct SldlSync {
    pub(crate) shared: Arc<crate::kernel::Shared>,
}

impl core::fmt::Debug for SldlSync {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("SldlSync")
    }
}

impl SldlSync {
    /// Declares a wait-for edge for deadlock detection: `waiter` (e.g. a
    /// task name) is blocked on `resource` (e.g. a mutex name), which is
    /// currently held by `holder`. A waiter has at most one outstanding
    /// edge; declaring again replaces it. The kernel checks the declared
    /// graph for cycles when all activity is exhausted (see
    /// [`StallPolicy`](crate::StallPolicy)) and reports any cycle through
    /// [`RunError::Deadlock`](crate::RunError::Deadlock).
    ///
    /// Synchronization layers built on the kernel (e.g. the RTOS model's
    /// mutex) call this when a process blocks on an owned resource and
    /// [`clear_wait`](SldlSync::clear_wait) once it acquires it.
    pub fn declare_wait(
        &self,
        waiter: impl Into<String>,
        resource: impl Into<String>,
        holder: impl Into<String>,
    ) {
        self.shared
            .declare_wait(waiter.into(), resource.into(), holder.into());
    }

    /// Removes `waiter`'s declared wait-for edge, if any (called once the
    /// resource was acquired or the wait was abandoned).
    pub fn clear_wait(&self, waiter: &str) {
        self.shared.clear_wait(waiter);
    }
}

impl SyncLayer for SldlSync {
    type Ev = EventId;

    fn ev_new(&self) -> EventId {
        self.shared.alloc_event()
    }

    fn ev_wait(&self, ctx: &ProcCtx, e: EventId) {
        ctx.wait(e);
    }

    fn ev_notify(&self, ctx: &ProcCtx, e: EventId) {
        ctx.notify(e);
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemState {
    count: u64,
}

/// A counting semaphore channel (the `sem` of the paper's Figure 3 bus
/// interface: the ISR releases it, the bus driver acquires it).
///
/// Clonable; all clones share the same state.
pub struct Semaphore<L: SyncLayer> {
    layer: L,
    ev: L::Ev,
    state: Arc<Mutex<SemState>>,
}

impl<L: SyncLayer> Clone for Semaphore<L> {
    fn clone(&self) -> Self {
        Semaphore {
            layer: self.layer.clone(),
            ev: self.ev,
            state: Arc::clone(&self.state),
        }
    }
}

impl<L: SyncLayer> core::fmt::Debug for Semaphore<L> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Semaphore")
            .field("count", &self.state.lock().count)
            .finish()
    }
}

impl<L: SyncLayer> Semaphore<L> {
    /// Creates a semaphore with `initial` permits on the given sync layer.
    pub fn new(initial: u64, layer: L) -> Self {
        let ev = layer.ev_new();
        Semaphore {
            layer,
            ev,
            state: Arc::new(Mutex::new(SemState { count: initial })),
        }
    }

    /// Blocks until a permit is available, then takes it.
    pub fn acquire(&self, ctx: &ProcCtx) {
        loop {
            {
                let mut st = self.state.lock();
                if st.count > 0 {
                    st.count -= 1;
                    return;
                }
            }
            self.layer.ev_wait(ctx, self.ev);
        }
    }

    /// Takes a permit if one is available without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock();
        if st.count > 0 {
            st.count -= 1;
            true
        } else {
            false
        }
    }

    /// Returns a permit and wakes blocked acquirers.
    pub fn release(&self, ctx: &ProcCtx) {
        self.state.lock().count += 1;
        self.layer.ev_notify(ctx, self.ev);
    }

    /// Current number of available permits.
    #[must_use]
    pub fn permits(&self) -> u64 {
        self.state.lock().count
    }
}

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
}

/// A FIFO message queue channel (the `c_queue` of the paper's Figure 7),
/// optionally bounded. `send` blocks while full; `recv` blocks while empty.
///
/// Clonable; all clones share the same state.
pub struct Queue<T, L: SyncLayer> {
    layer: L,
    /// "Ready": notified when an item is enqueued.
    erdy: L::Ev,
    /// "Acknowledge": notified when an item is dequeued.
    eack: L::Ev,
    state: Arc<Mutex<QueueState<T>>>,
}

impl<T, L: SyncLayer> Clone for Queue<T, L> {
    fn clone(&self) -> Self {
        Queue {
            layer: self.layer.clone(),
            erdy: self.erdy,
            eack: self.eack,
            state: Arc::clone(&self.state),
        }
    }
}

impl<T, L: SyncLayer> core::fmt::Debug for Queue<T, L> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Queue")
            .field("len", &st.items.len())
            .field("capacity", &st.capacity)
            .finish()
    }
}

impl<T: Send + 'static, L: SyncLayer> Queue<T, L> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use [`Handshake`] for rendezvous).
    pub fn bounded(capacity: usize, layer: L) -> Self {
        assert!(capacity > 0, "bounded queue capacity must be nonzero");
        Self::with_capacity(Some(capacity), layer)
    }

    /// Creates a queue with no capacity limit (`send` never blocks).
    pub fn unbounded(layer: L) -> Self {
        Self::with_capacity(None, layer)
    }

    fn with_capacity(capacity: Option<usize>, layer: L) -> Self {
        let erdy = layer.ev_new();
        let eack = layer.ev_new();
        Queue {
            layer,
            erdy,
            eack,
            state: Arc::new(Mutex::new(QueueState {
                items: VecDeque::new(),
                capacity,
            })),
        }
    }

    /// Enqueues `value`, blocking while the queue is full.
    pub fn send(&self, ctx: &ProcCtx, value: T) {
        let mut value = Some(value);
        loop {
            {
                let mut st = self.state.lock();
                let full = st.capacity.is_some_and(|c| st.items.len() >= c);
                if !full {
                    st.items
                        .push_back(value.take().expect("value still pending"));
                    break;
                }
            }
            self.layer.ev_wait(ctx, self.eack);
        }
        self.layer.ev_notify(ctx, self.erdy);
    }

    /// Dequeues the next value, blocking while the queue is empty.
    pub fn recv(&self, ctx: &ProcCtx) -> T {
        loop {
            {
                let mut st = self.state.lock();
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.layer.ev_notify(ctx, self.eack);
                    return v;
                }
            }
            self.layer.ev_wait(ctx, self.erdy);
        }
    }

    /// Dequeues the next value if one is available, without blocking.
    pub fn try_recv(&self, ctx: &ProcCtx) -> Option<T> {
        let v = self.state.lock().items.pop_front();
        if v.is_some() {
            self.layer.ev_notify(ctx, self.eack);
        }
        v
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether the queue holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.state.lock().items.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

struct HandshakeState {
    pending_senders: u64,
    pending_receivers: u64,
    grants_to_senders: u64,
    grants_to_receivers: u64,
}

/// A rendezvous channel: `send` and `recv` both block until a matching
/// partner arrives (double-handshake synchronization, the `c1`/`c2` channels
/// of the paper's Figure 3 example).
///
/// Clonable; all clones share the same state.
pub struct Handshake<L: SyncLayer> {
    layer: L,
    sender_wake: L::Ev,
    receiver_wake: L::Ev,
    state: Arc<Mutex<HandshakeState>>,
}

impl<L: SyncLayer> Clone for Handshake<L> {
    fn clone(&self) -> Self {
        Handshake {
            layer: self.layer.clone(),
            sender_wake: self.sender_wake,
            receiver_wake: self.receiver_wake,
            state: Arc::clone(&self.state),
        }
    }
}

impl<L: SyncLayer> core::fmt::Debug for Handshake<L> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Handshake")
            .field("pending_senders", &st.pending_senders)
            .field("pending_receivers", &st.pending_receivers)
            .finish()
    }
}

impl<L: SyncLayer> Handshake<L> {
    /// Creates a rendezvous channel on the given sync layer.
    pub fn new(layer: L) -> Self {
        let sender_wake = layer.ev_new();
        let receiver_wake = layer.ev_new();
        Handshake {
            layer,
            sender_wake,
            receiver_wake,
            state: Arc::new(Mutex::new(HandshakeState {
                pending_senders: 0,
                pending_receivers: 0,
                grants_to_senders: 0,
                grants_to_receivers: 0,
            })),
        }
    }

    /// Blocks until a receiver has arrived (or is already waiting).
    pub fn send(&self, ctx: &ProcCtx) {
        {
            let mut st = self.state.lock();
            if st.pending_receivers > 0 {
                st.pending_receivers -= 1;
                st.grants_to_receivers += 1;
                drop(st);
                self.layer.ev_notify(ctx, self.receiver_wake);
                return;
            }
            st.pending_senders += 1;
        }
        loop {
            self.layer.ev_wait(ctx, self.sender_wake);
            let mut st = self.state.lock();
            if st.grants_to_senders > 0 {
                st.grants_to_senders -= 1;
                return;
            }
        }
    }

    /// Blocks until a sender has arrived (or is already waiting).
    pub fn recv(&self, ctx: &ProcCtx) {
        {
            let mut st = self.state.lock();
            if st.pending_senders > 0 {
                st.pending_senders -= 1;
                st.grants_to_senders += 1;
                drop(st);
                self.layer.ev_notify(ctx, self.sender_wake);
                return;
            }
            st.pending_receivers += 1;
        }
        loop {
            self.layer.ev_wait(ctx, self.receiver_wake);
            let mut st = self.state.lock();
            if st.grants_to_receivers > 0 {
                st.grants_to_receivers -= 1;
                return;
            }
        }
    }
}
