//! Deterministic, seeded fault injection for robustness studies.
//!
//! A [`FaultPlan`] describes *which* anomalies the kernel should inject
//! and *how often*; the kernel consults it at three hook points:
//!
//! * **Delay perturbation** — [`ProcCtx::perturb_delay`] stretches a delay
//!   annotation (modeling WCET jitter / execution-time overruns). The RTOS
//!   model routes every `time_wait` through this hook, so only *computation*
//!   delays are perturbed, never the pure passage of time between periodic
//!   releases.
//! * **Notification faults** — [`ProcCtx::notify`] may drop the
//!   notification (a lost interrupt/event) or duplicate it into the next
//!   delta cycle (a double-latched interrupt).
//! * **Spurious releases** — whenever simulated time advances, registered
//!   events may fire spuriously (glitching interrupt lines).
//!
//! All decisions are drawn from per-category [`SmallRng`] streams forked
//! from the plan seed, so a run is a pure function of *(model, plan)* and
//! a given fault sequence can be replayed exactly.
//!
//! **Invariant:** an empty plan ([`FaultPlan::none`], or any plan whose
//! rates are all zero and which registers no spurious events) leaves the
//! simulation *byte-identical* to one with no plan installed: the hooks
//! draw no randomness, append no log records and change no kernel
//! scheduling state. `crates/sim/tests/fault_prop.rs` pins this down.
//!
//! Faults perturb the *model* (what the simulated system observes). The
//! companion [`ChaosPlan`](crate::ChaosPlan) in [`crate::chaos`] perturbs
//! the *kernel* (which runnable process is dispatched first, which handoff
//! path a resume takes); the two compose freely and draw from independent
//! seeded streams.
//!
//! [`ProcCtx::perturb_delay`]: crate::ProcCtx::perturb_delay
//! [`ProcCtx::notify`]: crate::ProcCtx::notify

use std::time::Duration;

use crate::ids::EventId;
use crate::rng::SmallRng;
use crate::time::SimTime;

/// WCET jitter configuration: with probability `probability`, a perturbed
/// delay is stretched by a uniform factor in `[1, max_stretch]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WcetJitter {
    /// Per-delay probability of injecting a stretch.
    pub probability: f64,
    /// Maximum stretch factor (e.g. `2.0` = up to a 2× WCET overrun).
    pub max_stretch: f64,
}

/// A spurious-release registration: `event` fires spuriously with
/// `probability` at every advance of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpuriousRelease {
    /// The event to glitch.
    pub event: EventId,
    /// Per-time-advance probability of a spurious notification.
    pub probability: f64,
}

/// A seeded description of the anomalies to inject into a run.
///
/// Install on a simulation with
/// [`SimulationBuilder::fault_plan`](crate::SimulationBuilder::fault_plan);
/// injections performed during the run are logged in
/// [`Report::faults`](crate::Report::faults).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Delay-annotation jitter (WCET overruns), if enabled.
    pub wcet: Option<WcetJitter>,
    /// Probability that a `notify` is silently dropped.
    pub drop_notify: f64,
    /// Probability that a `notify` is duplicated into the next delta.
    pub dup_notify: f64,
    /// Events that may fire spuriously when time advances.
    pub spurious: Vec<SpuriousRelease>,
}

impl FaultPlan {
    /// The empty plan: injects nothing. Installing it is byte-identical
    /// to installing no plan at all.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::seeded(0)
    }

    /// An empty plan carrying `seed`; chain builder calls to enable
    /// categories.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            wcet: None,
            drop_notify: 0.0,
            dup_notify: 0.0,
            spurious: Vec::new(),
        }
    }

    /// Enables WCET jitter: each perturbed delay is stretched with
    /// `probability` by a uniform factor in `[1, max_stretch]`.
    #[must_use]
    pub fn with_wcet_jitter(mut self, probability: f64, max_stretch: f64) -> Self {
        self.wcet = Some(WcetJitter {
            probability,
            max_stretch,
        });
        self
    }

    /// Enables dropping of event notifications with the given probability.
    #[must_use]
    pub fn with_drop_notify(mut self, probability: f64) -> Self {
        self.drop_notify = probability;
        self
    }

    /// Enables duplication of event notifications with the given
    /// probability.
    #[must_use]
    pub fn with_dup_notify(mut self, probability: f64) -> Self {
        self.dup_notify = probability;
        self
    }

    /// Registers `event` for spurious releases with the given per-time-
    /// advance probability.
    #[must_use]
    pub fn with_spurious(mut self, event: EventId, probability: f64) -> Self {
        self.spurious.push(SpuriousRelease { event, probability });
        self
    }

    /// The plan seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the same plan (rates and registrations kept) re-keyed to
    /// `seed`. Sweep harnesses use this to give every sweep point an
    /// independent, reproducible fault stream derived from a base seed.
    #[must_use]
    pub fn reseed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether this plan can never inject anything. Empty plans are not
    /// armed by the kernel at all, guaranteeing the zero-perturbation
    /// invariant structurally.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wcet
            .is_none_or(|w| w.probability <= 0.0 || w.max_stretch <= 1.0)
            && self.drop_notify <= 0.0
            && self.dup_notify <= 0.0
            && self.spurious.iter().all(|s| s.probability <= 0.0)
    }
}

/// One fault actually injected during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InjectedFault {
    /// A delay annotation was stretched from `requested` to `injected`.
    DelayStretched {
        /// Process whose delay was perturbed.
        process: String,
        /// The delay the model asked for.
        requested: Duration,
        /// The delay actually consumed.
        injected: Duration,
    },
    /// An event notification was dropped.
    NotifyDropped {
        /// The event whose notification was lost.
        event: EventId,
    },
    /// An event notification was duplicated into the next delta cycle.
    NotifyDuplicated {
        /// The duplicated event.
        event: EventId,
    },
    /// A registered event fired spuriously on a time advance.
    SpuriousNotify {
        /// The spuriously notified event.
        event: EventId,
    },
}

/// A time-stamped [`InjectedFault`], as logged in
/// [`Report::faults`](crate::Report::faults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Simulated time of the injection.
    pub at: SimTime,
    /// What was injected.
    pub fault: InjectedFault,
}

/// Armed injection state held by the kernel (crate internal).
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng_delay: SmallRng,
    rng_notify: SmallRng,
    rng_spurious: SmallRng,
    pub(crate) log: Vec<FaultRecord>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let root = SmallRng::seed_from_u64(plan.seed);
        FaultState {
            rng_delay: root.fork(1),
            rng_notify: root.fork(2),
            rng_spurious: root.fork(3),
            plan,
            log: Vec::new(),
        }
    }

    /// Applies WCET jitter to `requested`; returns the (possibly
    /// stretched) delay.
    pub(crate) fn perturb_delay(
        &mut self,
        at: SimTime,
        process: &str,
        requested: Duration,
    ) -> Duration {
        let Some(j) = self.plan.wcet else {
            return requested;
        };
        if j.probability <= 0.0 || j.max_stretch <= 1.0 || requested.is_zero() {
            return requested;
        }
        if !self.rng_delay.gen_bool(j.probability) {
            return requested;
        }
        let factor = 1.0 + self.rng_delay.gen_f64() * (j.max_stretch - 1.0);
        let injected = Duration::from_nanos((requested.as_nanos() as f64 * factor) as u64);
        self.log.push(FaultRecord {
            at,
            fault: InjectedFault::DelayStretched {
                process: process.to_string(),
                requested,
                injected,
            },
        });
        injected
    }

    /// Decides the fate of a notification of `event`.
    pub(crate) fn notify_fate(&mut self, at: SimTime, event: EventId) -> NotifyFate {
        if self.plan.drop_notify > 0.0 && self.rng_notify.gen_bool(self.plan.drop_notify) {
            self.log.push(FaultRecord {
                at,
                fault: InjectedFault::NotifyDropped { event },
            });
            return NotifyFate::Drop;
        }
        if self.plan.dup_notify > 0.0 && self.rng_notify.gen_bool(self.plan.dup_notify) {
            self.log.push(FaultRecord {
                at,
                fault: InjectedFault::NotifyDuplicated { event },
            });
            return NotifyFate::Duplicate;
        }
        NotifyFate::Deliver
    }

    /// Events to fire spuriously for a time advance to `at`.
    pub(crate) fn spurious_events(&mut self, at: SimTime) -> Vec<EventId> {
        let mut fired = Vec::new();
        // Iterate by index to appease the borrow checker; the list is tiny.
        for i in 0..self.plan.spurious.len() {
            let s = self.plan.spurious[i];
            if s.probability > 0.0 && self.rng_spurious.gen_bool(s.probability) {
                self.log.push(FaultRecord {
                    at,
                    fault: InjectedFault::SpuriousNotify { event: s.event },
                });
                fired.push(s.event);
            }
        }
        fired
    }
}

/// What the kernel should do with a notification (crate internal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NotifyFate {
    Deliver,
    Drop,
    Duplicate,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::seeded(1).is_empty());
        assert!(FaultPlan::seeded(1).with_wcet_jitter(0.0, 2.0).is_empty());
        assert!(FaultPlan::seeded(1).with_wcet_jitter(0.5, 1.0).is_empty());
        assert!(!FaultPlan::seeded(1).with_wcet_jitter(0.5, 2.0).is_empty());
        assert!(!FaultPlan::seeded(1).with_drop_notify(0.1).is_empty());
    }

    #[test]
    fn perturb_is_deterministic_and_bounded() {
        let plan = FaultPlan::seeded(9).with_wcet_jitter(1.0, 2.0);
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        let d = Duration::from_micros(100);
        for _ in 0..50 {
            let x = a.perturb_delay(SimTime::ZERO, "p", d);
            let y = b.perturb_delay(SimTime::ZERO, "p", d);
            assert_eq!(x, y);
            assert!(x >= d && x <= d * 2, "{x:?}");
        }
        assert_eq!(a.log.len(), 50);
    }

    #[test]
    fn zero_rate_never_injects() {
        let mut st = FaultState::new(FaultPlan::seeded(3));
        let d = Duration::from_micros(10);
        assert_eq!(st.perturb_delay(SimTime::ZERO, "p", d), d);
        assert!(st.log.is_empty());
    }
}
