//! Integration tests for the Table 1 scenarios: transcoding delays, context
//! switches, and codec fidelity of the unscheduled and architecture models.

use std::time::Duration;

use rtos_model::{SchedAlg, TimeSlice};
use vocoder::{simulate_architecture, simulate_unscheduled, VocoderConfig};

fn ms_f(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn cfg(frames: usize) -> VocoderConfig {
    VocoderConfig {
        frames,
        ..VocoderConfig::default()
    }
}

#[test]
fn unscheduled_transcoding_delay_matches_analytic_value() {
    let run = simulate_unscheduled(&cfg(20)).unwrap();
    assert_eq!(run.transcode_delays.len(), 20);
    // 4 encoder subframes + final decoder subframe = 9.725 ms, every frame.
    for d in &run.transcode_delays {
        assert_eq!(*d, Duration::from_micros(9_725), "delay {d:?}");
    }
    assert_eq!(run.context_switches, 0);
    assert!(run.mean_snr_db > 20.0, "snr {}", run.mean_snr_db);
}

#[test]
fn architecture_transcoding_delay_shows_serialization_overhead() {
    let run = simulate_architecture(
        &cfg(20),
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
    )
    .unwrap();
    assert_eq!(run.transcode_delays.len(), 20);
    // Fully serialized: 4 × (2.2 + 0.925) = 12.5 ms.
    let mean = ms_f(run.mean_transcode_delay());
    assert!(
        (mean - 12.5).abs() < 0.05,
        "architecture transcode delay {mean:.3} ms"
    );
    // The paper's Table-1 shape: arch delay > unscheduled delay.
    let unsched = simulate_unscheduled(&cfg(20)).unwrap();
    assert!(run.mean_transcode_delay() > unsched.mean_transcode_delay());
    // Context switches: 8 per frame (enc↔dec per subframe).
    assert!(run.context_switches >= 8 * 19, "{}", run.context_switches);
    assert!(run.mean_snr_db > 20.0);
}

#[test]
fn decoded_speech_is_identical_across_models() {
    // Scheduling must not change the data path: both models decode the
    // same frames to the same quality.
    let u = simulate_unscheduled(&cfg(10)).unwrap();
    let a = simulate_architecture(
        &cfg(10),
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
    )
    .unwrap();
    assert!((u.mean_snr_db - a.mean_snr_db).abs() < 1e-9);
}

#[test]
fn deadline_is_met_every_frame() {
    // Transcode delay must stay below the 20 ms frame period, or the codec
    // would fall behind in back-to-back mode.
    for run in [
        simulate_unscheduled(&cfg(30)).unwrap(),
        simulate_architecture(
            &cfg(30),
            SchedAlg::PriorityPreemptive,
            TimeSlice::WholeDelay,
        )
        .unwrap(),
    ] {
        assert!(run.max_transcode_delay().unwrap() < Duration::from_millis(20));
    }
}

#[test]
fn quantum_slicing_does_not_change_steady_state_delay() {
    let whole = simulate_architecture(
        &cfg(10),
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
    )
    .unwrap();
    let sliced = simulate_architecture(
        &cfg(10),
        SchedAlg::PriorityPreemptive,
        TimeSlice::Quantum(Duration::from_micros(100)),
    )
    .unwrap();
    // Work conservation: same total delay (the pipeline has a fixed
    // dependency chain; slicing only adds scheduler invocations).
    assert_eq!(whole.mean_transcode_delay(), sliced.mean_transcode_delay());
}

#[test]
fn utilization_reflects_codec_load() {
    let run = simulate_architecture(
        &cfg(20),
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
    )
    .unwrap();
    let m = run.metrics.expect("architecture model has metrics");
    // 12.5 ms of DSP work per 20 ms frame ⇒ ~62.5% utilization.
    assert!(
        (m.utilization() - 0.625).abs() < 0.03,
        "utilization {}",
        m.utilization()
    );
}

#[test]
fn runs_are_deterministic() {
    let a = simulate_architecture(&cfg(8), SchedAlg::PriorityPreemptive, TimeSlice::WholeDelay)
        .unwrap();
    let b = simulate_architecture(&cfg(8), SchedAlg::PriorityPreemptive, TimeSlice::WholeDelay)
        .unwrap();
    assert_eq!(a.transcode_delays, b.transcode_delays);
    assert_eq!(a.context_switches, b.context_switches);
    assert_eq!(a.mean_snr_db, b.mean_snr_db);
}
