//! Fault-injection and health-monitoring scenarios on the vocoder: empty
//! plans are perturbation-free, seeded jitter degrades transcoding delay
//! deterministically, and the decoder watchdog converts a starved
//! pipeline into a diagnosable failure.

use std::time::Duration;

use rtos_model::{SchedAlg, TimeSlice, WatchdogAction};
use sldl_sim::{FaultPlan, RunError};
use vocoder::{simulate_architecture, VocoderConfig, WatchdogSpec};

fn base(frames: usize) -> VocoderConfig {
    VocoderConfig {
        frames,
        ..VocoderConfig::default()
    }
}

fn arch(cfg: &VocoderConfig) -> vocoder::VocoderRun {
    simulate_architecture(cfg, SchedAlg::PriorityPreemptive, TimeSlice::WholeDelay)
        .expect("architecture run")
}

#[test]
fn empty_fault_plan_is_perturbation_free() {
    let clean = arch(&base(6));
    let with_empty_plan = arch(&VocoderConfig {
        faults: FaultPlan::seeded(42), // carries a seed but injects nothing
        ..base(6)
    });
    assert_eq!(clean.end_time, with_empty_plan.end_time);
    assert_eq!(clean.transcode_delays, with_empty_plan.transcode_delays);
    assert_eq!(clean.context_switches, with_empty_plan.context_switches);
    assert_eq!(with_empty_plan.faults_injected, 0);
}

#[test]
fn wcet_jitter_degrades_delay_deterministically() {
    let cfg = VocoderConfig {
        faults: FaultPlan::seeded(7).with_wcet_jitter(0.3, 2.0),
        ..base(6)
    };
    let a = arch(&cfg);
    let b = arch(&cfg);
    assert!(a.faults_injected > 0, "jitter plan must inject");
    assert_eq!(a.transcode_delays, b.transcode_delays, "replayable faults");
    assert_eq!(a.faults_injected, b.faults_injected);

    let clean = arch(&base(6));
    assert!(
        a.mean_transcode_delay() > clean.mean_transcode_delay(),
        "stretched compute must lengthen transcoding: {:?} vs {:?}",
        a.mean_transcode_delay(),
        clean.mean_transcode_delay()
    );
}

#[test]
fn watchdog_stays_quiet_on_a_healthy_pipeline() {
    let run = arch(&VocoderConfig {
        watchdog: Some(WatchdogSpec {
            timeout: Duration::from_millis(60),
            action: WatchdogAction::AbortRun,
        }),
        ..base(6)
    });
    // The watchdog is disarmed on decoder completion: same result as the
    // unmonitored run.
    assert_eq!(run.transcode_delays.len(), 6);
}

#[test]
fn watchdog_catches_a_starved_decoder() {
    // Dropping a third of all notifications eventually loses a queue
    // hand-off for good; with the heartbeat armed the hang becomes a
    // diagnosable WatchdogExpired naming the silent component.
    let cfg = VocoderConfig {
        faults: FaultPlan::seeded(11).with_drop_notify(0.3),
        watchdog: Some(WatchdogSpec {
            timeout: Duration::from_millis(60),
            action: WatchdogAction::AbortRun,
        }),
        ..base(8)
    };
    match simulate_architecture(&cfg, SchedAlg::PriorityPreemptive, TimeSlice::WholeDelay) {
        Err(RunError::WatchdogExpired { watchdog, .. }) => {
            assert_eq!(watchdog, "decoder");
        }
        other => panic!("expected WatchdogExpired, got {other:?}"),
    }
}
