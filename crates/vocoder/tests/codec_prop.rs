//! Property-based tests for the LPC codec: round-trip fidelity, filter
//! stability, quantizer bounds, and framing invariance over random signals.
//!
//! Randomized inputs are drawn from the workspace's seeded
//! [`SmallRng`] (fixed seeds, many cases per property), so failures are
//! reproducible from the printed seed alone.

use sldl_sim::{SimTime, SmallRng};
use vocoder::dsp::{
    analysis_filter, autocorrelate, dequantize_reflection, levinson_durbin, quantize_reflection,
    reflection_to_lpc, snr_db, synthesis_filter, LPC_ORDER,
};
use vocoder::{Decoder, Encoder, Frame, SpeechSource};

fn frame_from(samples: Vec<f64>, seq: u64) -> Frame {
    Frame {
        seq,
        arrived: SimTime::ZERO,
        samples,
    }
}

/// Smooth random signals (random AR(2) process) — the class LPC targets.
fn ar2_signal(rng: &mut SmallRng) -> Vec<f64> {
    let r = 0.2 + 0.75 * rng.gen_f64();
    let seed = rng.next_u64();
    let n = 40 + rng.gen_range_usize(360);
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
    };
    let omega = 0.3f64;
    let a1 = 2.0 * r * omega.cos();
    let a2 = -r * r;
    let (mut y1, mut y2) = (0.0, 0.0);
    (0..n)
        .map(|_| {
            let y = next() + a1 * y1 + a2 * y2;
            y2 = y1;
            y1 = y;
            y
        })
        .collect()
}

#[test]
fn levinson_always_yields_stable_reflections() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sig = ar2_signal(&mut rng);
        let r = autocorrelate(&sig, LPC_ORDER + 1);
        let sol = levinson_durbin(&r, LPC_ORDER);
        for k in &sol.reflection {
            assert!(k.abs() < 1.0, "reflection {k}, seed {seed}");
        }
        assert!(sol.error >= 0.0, "seed {seed}");
    }
}

#[test]
fn analysis_synthesis_identity_with_exact_coefficients() {
    for seed in 100..164u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sig = ar2_signal(&mut rng);
        let r = autocorrelate(&sig, LPC_ORDER + 1);
        let sol = levinson_durbin(&r, LPC_ORDER);
        let history = vec![0.0; LPC_ORDER];
        let residual = analysis_filter(&sig, &sol.coeffs, &history);
        let mut synth_hist = vec![0.0; LPC_ORDER];
        let rebuilt = synthesis_filter(&residual, &sol.coeffs, &mut synth_hist);
        let worst = sig
            .iter()
            .zip(&rebuilt)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-6, "reconstruction error {worst}, seed {seed}");
    }
}

#[test]
fn quantizer_round_trip_error_is_bounded() {
    for seed in 200..264u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let k = 4.0 * rng.gen_f64() - 2.0;
        let bits = 4 + rng.gen_range_u64(8) as u32;
        let q = quantize_reflection(k, bits);
        let back = dequantize_reflection(q, bits);
        assert!(back.abs() <= 1.0, "seed {seed}");
        let clamped = k.clamp(-0.999, 0.999);
        let step = 2.0 / (1i64 << bits) as f64;
        assert!(
            (clamped - back).abs() <= step,
            "err {}, seed {seed}",
            (clamped - back).abs()
        );
    }
}

#[test]
fn step_up_inverts_levinson() {
    for seed in 300..364u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sig = ar2_signal(&mut rng);
        let r = autocorrelate(&sig, LPC_ORDER + 1);
        let sol = levinson_durbin(&r, LPC_ORDER);
        let rebuilt = reflection_to_lpc(&sol.reflection);
        for (a, b) in sol.coeffs.iter().zip(&rebuilt) {
            assert!((a - b).abs() < 1e-9, "seed {seed}");
        }
    }
}

#[test]
fn full_codec_round_trip_never_explodes() {
    for case in 0..64u64 {
        let seed = SmallRng::seed_from_u64(case).gen_range_u64(10_000);
        // Whatever the speech content, decoded output must stay bounded
        // (stable synthesis) and carry positive SNR.
        let mut src = SpeechSource::new(seed);
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for _ in 0..4 {
            let frame = src.next_frame(SimTime::ZERO);
            let coded = enc.encode(&frame);
            let out = dec.decode(&coded);
            let peak_in = frame.samples.iter().fold(0.0f64, |m, s| m.max(s.abs()));
            let peak_out = out.samples.iter().fold(0.0f64, |m, s| m.max(s.abs()));
            assert!(peak_out.is_finite());
            assert!(
                peak_out < peak_in * 4.0 + 1.0,
                "decoded peak {peak_out} vs input {peak_in}, seed {seed}"
            );
            let snr = snr_db(&frame.samples, &out.samples);
            assert!(snr > 3.0, "snr {snr}, seed {seed}");
        }
    }
}

#[test]
fn encoder_is_deterministic() {
    for case in 0..32u64 {
        let seed = SmallRng::seed_from_u64(1000 + case).gen_range_u64(10_000);
        let mut src = SpeechSource::new(seed);
        let frame = src.next_frame(SimTime::ZERO);
        let a = Encoder::new().encode(&frame);
        let b = Encoder::new().encode(&frame);
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn silence_frames_round_trip_exactly() {
    let mut enc = Encoder::new();
    let mut dec = Decoder::new();
    for seq in 0..3 {
        let f = frame_from(vec![0.0; 160], seq);
        let out = dec.decode(&enc.encode(&f));
        assert!(out.samples.iter().all(|&s| s.abs() < 1e-12));
    }
}
