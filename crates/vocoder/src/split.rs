//! Split-PE transcoding: encoder and decoder on separate processing
//! elements, communicating over an arbitrated bus.
//!
//! This is the communication-refined version of the paper's case study:
//! where [`simulate_architecture`](crate::simulate_architecture) schedules
//! both codec tasks on one DSP, [`simulate_split`] places them on two RTOS
//! instances and lowers the subframe stream onto a timed, arbitrated bus
//! ([`model_refine::BusChannel`]). A low-priority *reporter* task on the
//! decoder PE additionally returns one acknowledgment per subframe to a
//! status task on the encoder PE over the *same* bus; because the reporter
//! drains a local queue, its ack transfers overlap the encoder's next
//! subframe transfer and the two directions genuinely contend for the bus.
//!
//! With [`BusConfig::ideal`] the bus adds no time at all and the split
//! model transcodes exactly [`VocoderConfig::frames`] frames, just like
//! the single-PE architecture model.

use std::sync::Arc;

use model_refine::{BusChannel, CrossFairness, SharedBus};
use rtos_model::{MetricsSnapshot, Priority, Rtos, SchedAlg, TaskParams, TimeSlice};
use sldl_sim::bus::{BusConfig, BusStats};
use sldl_sim::sync::Mutex;
use sldl_sim::{
    Child, KernelInvariants, ProcCtx, Queue, RunError, SimTime, Simulation, TraceConfig,
};

use crate::codec::{Decoder, Encoder};
use crate::frame::{Frame, SpeechSource, FRAME_PERIOD};
use crate::scenario::{finish, Sink, SubframeMsg, VocoderConfig, VocoderRun};

/// Placement and bus parameters of a split-PE transcoding run.
#[derive(Debug, Clone)]
pub struct SplitConfig {
    /// The shared bus between the two PEs.
    pub bus: BusConfig,
    /// PE index (0 or 1) the encoder (and the status task) runs on.
    pub enc_pe: usize,
    /// PE index (0 or 1) the decoder runs on. May equal `enc_pe`: the
    /// "split" then degenerates to a single-PE model whose channels still
    /// ride the bus.
    pub dec_pe: usize,
    /// Modeled payload bytes of one subframe message.
    pub subframe_bytes: u64,
    /// Modeled payload bytes of one per-subframe acknowledgment.
    pub ack_bytes: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            bus: BusConfig::ideal("pebus"),
            enc_pe: 0,
            dec_pe: 1,
            subframe_bytes: 16,
            ack_bytes: 4,
        }
    }
}

/// Results of a split-PE transcoding run.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SplitRun {
    /// The base measurements (delays, SNR, kernel stats, trace records).
    /// `context_switches` sums both PEs; `metrics` is `None` — use
    /// [`pe_metrics`](SplitRun::pe_metrics).
    pub run: VocoderRun,
    /// Statistics of the inter-PE bus.
    pub bus: BusStats,
    /// Match-phase fairness of the subframe channel.
    pub subframe_fairness: CrossFairness,
    /// Match-phase fairness of the acknowledgment channel.
    pub ack_fairness: CrossFairness,
    /// Per-PE RTOS metrics, in PE-index order.
    pub pe_metrics: Vec<(String, MetricsSnapshot)>,
    /// Acknowledgments the status task received (one per decoded
    /// subframe).
    pub acks_received: u64,
}

/// Runs the vocoder split across two PEs connected by an arbitrated bus.
///
/// # Errors
///
/// Returns [`RunError`] if a simulated process panics.
///
/// # Panics
///
/// Panics if a PE index in `split` is not 0 or 1.
pub fn simulate_split(
    cfg: &VocoderConfig,
    split: &SplitConfig,
    alg: SchedAlg,
    slice: TimeSlice,
) -> Result<SplitRun, RunError> {
    assert!(
        split.enc_pe < 2 && split.dec_pe < 2,
        "PE index must be 0 or 1"
    );
    let started = std::time::Instant::now();
    let mut builder = Simulation::builder()
        .fault_plan(cfg.faults.clone())
        .chaos_plan(cfg.chaos.clone());
    if cfg.oracle {
        builder = builder.invariants(KernelInvariants::all());
    }
    if cfg.trace {
        builder = builder.trace(TraceConfig::default());
    }
    let mut sim = builder.build();
    let trace = sim.trace_handle();

    let oses: Vec<Rtos> = ["pe0", "pe1"]
        .iter()
        .map(|name| {
            let os = Rtos::new(*name, sim.sync_layer());
            if cfg.oracle {
                os.set_conformance_checks(true);
            }
            if let Some(t) = &trace {
                os.attach_trace(t.clone());
            }
            os.start(alg);
            os.set_time_slice(slice);
            os.set_context_switch_cost(cfg.switch_cost);
            os
        })
        .collect();
    let enc_os = oses[split.enc_pe].clone();
    let dec_os = oses[split.dec_pe].clone();

    let bus = SharedBus::new(split.bus.clone());
    // Subframe stream arbitrates ahead of the ack backchannel.
    let link: BusChannel<SubframeMsg> = BusChannel::new(
        "subframes",
        enc_os.clone(),
        dec_os.clone(),
        &bus,
        split.subframe_bytes,
        1,
    );
    let ack: BusChannel<u64> = BusChannel::new(
        "acks",
        dec_os.clone(),
        enc_os.clone(),
        &bus,
        split.ack_bytes,
        2,
    );

    // Decoder health watchdog, armed on the decoder's PE.
    let wd = cfg.watchdog.map(|spec| {
        let (wd, monitor) = dec_os.watchdog("decoder", spec.timeout, spec.action);
        sim.spawn(monitor);
        wd
    });

    let sink = Arc::new(Mutex::new(Sink::default()));
    let acks_received = Arc::new(Mutex::new(0u64));

    // A/D → encoder: local unbounded queue on the encoder PE.
    let enc_in: Queue<Frame, Rtos> = Queue::unbounded(enc_os.clone());

    // Source: the A/D converter interrupt on the encoder PE.
    let frames = cfg.frames;
    let seed = cfg.seed;
    let originals: Arc<Mutex<Vec<Frame>>> = Arc::new(Mutex::new(Vec::new()));
    let tx = enc_in.clone();
    let originals_src = Arc::clone(&originals);
    let os_src = enc_os.clone();
    sim.spawn(Child::new("ad_source", move |ctx| {
        let mut src = SpeechSource::new(seed);
        for _ in 0..frames {
            let frame = src.next_frame(ctx.now());
            originals_src.lock().push(frame.clone());
            tx.send(ctx, frame);
            os_src.interrupt_return(ctx);
            ctx.waitfor(FRAME_PERIOD);
        }
    }));

    // Encoder task on the encoder PE.
    let timing = cfg.timing.clone();
    let rx = enc_in;
    let tx = link.clone();
    let os = enc_os.clone();
    sim.spawn(Child::new("encoder", move |ctx: &ProcCtx| {
        let me = os.task_create(&TaskParams::aperiodic("encoder", Priority(2)));
        os.task_activate(ctx, me);
        let mut enc = Encoder::new();
        for _ in 0..frames {
            let frame = rx.recv(ctx);
            for sub in 0..timing.subframes {
                for stage in &timing.encoder_subframe {
                    os.time_wait_as(ctx, stage.duration, stage.label);
                }
                let last = sub + 1 == timing.subframes;
                let payload = last.then(|| Box::new(enc.encode(&frame)));
                tx.send(ctx, SubframeMsg { payload });
            }
        }
        os.task_terminate(ctx);
    }));

    // Decoder task on the decoder PE; hands one acknowledgment per
    // subframe to the reporter through a local queue (non-blocking), so
    // it can post the next subframe receive immediately.
    let timing = cfg.timing.clone();
    let total_subs = cfg.frames * cfg.timing.subframes as usize;
    let sink2 = Arc::clone(&sink);
    let rx = link.clone();
    let ack_q: Queue<u64, Rtos> = Queue::unbounded(dec_os.clone());
    let ack_q_tx = ack_q.clone();
    let os = dec_os.clone();
    let wd_dec = wd.clone();
    sim.spawn(Child::new("decoder", move |ctx: &ProcCtx| {
        let me = os.task_create(&TaskParams::aperiodic("decoder", Priority(1)));
        os.task_activate(ctx, me);
        let mut dec = Decoder::new();
        for sub in 0..total_subs {
            let msg = rx.recv(ctx);
            for stage in &timing.decoder_subframe {
                os.time_wait_as(ctx, stage.duration, stage.label);
                if let Some(wd) = &wd_dec {
                    wd.kick(ctx);
                }
            }
            if let Some(encoded) = msg.payload {
                let out = dec.decode(&encoded);
                let mut s = sink2.lock();
                s.delays.push(ctx.now() - out.arrived);
                let original = &originals.lock()[usize::try_from(out.seq).expect("seq fits")];
                let snr = crate::dsp::snr_db(&original.samples, &out.samples);
                if snr.is_finite() {
                    s.snr_sum += snr;
                }
                s.snr_count += 1;
            }
            ack_q_tx.send(ctx, sub as u64);
        }
        if let Some(wd) = &wd_dec {
            wd.disarm();
            wd.kick(ctx);
        }
        os.task_terminate(ctx);
    }));

    // Reporter task on the decoder PE: drains the local ack queue and
    // sends each ack over the bus at a lower priority than the decoder.
    // Its transfers run while the encoder streams the next subframe —
    // the two bus masters genuinely contend.
    let ack_tx = ack.clone();
    let os = dec_os.clone();
    sim.spawn(Child::new("reporter", move |ctx: &ProcCtx| {
        let me = os.task_create(&TaskParams::aperiodic("reporter", Priority(2)));
        os.task_activate(ctx, me);
        for _ in 0..total_subs {
            let seq = ack_q.recv(ctx);
            ack_tx.send(ctx, seq);
        }
        os.task_terminate(ctx);
    }));

    // Status task on the encoder PE: consumes the per-subframe acks.
    // It runs at interrupt level (above the encoder) so the next ack
    // receive is re-posted as soon as one arrives — the work per ack is
    // zero modeled time, but without the elevated priority the ack
    // rendezvous could only match while the encoder idles between
    // frames, and the backchannel would never overlap the subframe
    // stream on the bus.
    let ack_rx = ack.clone();
    let os = enc_os.clone();
    let acks2 = Arc::clone(&acks_received);
    sim.spawn(Child::new("status", move |ctx: &ProcCtx| {
        let me = os.task_create(&TaskParams::aperiodic("status", Priority(1)));
        os.task_activate(ctx, me);
        for _ in 0..total_subs {
            ack_rx.recv(ctx);
            *acks2.lock() += 1;
        }
        os.task_terminate(ctx);
    }));

    let report = sim.run();
    let end = match &report {
        Ok(r) => r.end_time,
        Err(_) => SimTime::ZERO,
    };
    let pe_metrics: Vec<(String, MetricsSnapshot)> = oses
        .iter()
        .map(|os| (os.name().to_string(), os.metrics_at(end)))
        .collect();
    let mut run = finish(report, &sink, None, trace, started)?;
    run.context_switches = pe_metrics.iter().map(|(_, m)| m.context_switches).sum();
    let acks = *acks_received.lock();
    Ok(SplitRun {
        run,
        bus: bus.stats(),
        subframe_fairness: link.fairness(),
        ack_fairness: ack.fairness(),
        pe_metrics,
        acks_received: acks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn small() -> VocoderConfig {
        VocoderConfig {
            frames: 6,
            ..VocoderConfig::default()
        }
    }

    /// A DSP fast enough that communication, not computation, bounds the
    /// pipeline — per-subframe compute (4.4 us encode / 1.85 us decode)
    /// shrinks below one narrow-bus transfer, so the subframe stream and
    /// the ack backchannel genuinely queue up at the arbiter.
    fn fast_dsp() -> VocoderConfig {
        VocoderConfig {
            timing: small().timing.scaled(0.002),
            ..small()
        }
    }

    #[test]
    fn ideal_bus_transcodes_every_frame() {
        let run = simulate_split(
            &small(),
            &SplitConfig::default(),
            SchedAlg::PriorityPreemptive,
            TimeSlice::WholeDelay,
        )
        .unwrap();
        let subs = 6 * u64::from(small().timing.subframes);
        assert_eq!(run.run.transcode_delays.len(), 6);
        assert_eq!(run.acks_received, subs);
        assert!(run.run.mean_snr_db > 20.0);
        assert_eq!(run.bus.busy, Duration::ZERO);
        // One subframe message plus one ack per subframe, all counted.
        assert_eq!(run.bus.transactions, 2 * subs);
    }

    #[test]
    fn timed_bus_slows_the_pipeline_and_contends() {
        let ideal = simulate_split(
            &fast_dsp(),
            &SplitConfig::default(),
            SchedAlg::PriorityPreemptive,
            TimeSlice::WholeDelay,
        )
        .unwrap();
        let timed = simulate_split(
            &fast_dsp(),
            &SplitConfig {
                bus: BusConfig::new(
                    "pebus",
                    Duration::from_micros(2),
                    1,
                    Duration::from_micros(4),
                    sldl_sim::bus::Arbitration::FixedPriority,
                ),
                ..SplitConfig::default()
            },
            SchedAlg::PriorityPreemptive,
            TimeSlice::WholeDelay,
        )
        .unwrap();
        assert_eq!(timed.run.transcode_delays.len(), 6);
        assert!(timed.bus.busy > Duration::ZERO);
        assert!(
            timed.bus.contended > 0,
            "subframe stream and ack backchannel must contend on a narrow bus"
        );
        assert!(timed.run.mean_transcode_delay() > ideal.run.mean_transcode_delay());
        // The decoder PE sees the transfer-complete interrupts.
        let dec = &timed.pe_metrics[1].1;
        assert!(dec.isr_notifies > 0);
    }

    #[test]
    fn same_pe_placement_degenerates_cleanly() {
        let run = simulate_split(
            &small(),
            &SplitConfig {
                enc_pe: 0,
                dec_pe: 0,
                ..SplitConfig::default()
            },
            SchedAlg::PriorityPreemptive,
            TimeSlice::WholeDelay,
        )
        .unwrap();
        assert_eq!(run.run.transcode_delays.len(), 6);
        assert_eq!(run.acks_received, 6 * u64::from(small().timing.subframes));
        // Everything ran on pe0; pe1 idled.
        assert_eq!(run.pe_metrics[1].1.context_switches, 0);
    }
}
