//! # vocoder — the voice-codec case study workload
//!
//! The evaluation of *RTOS Modeling for System Level Design* (DATE 2003)
//! uses a GSM voice codec for mobile phones: two real-time tasks (encoder
//! and decoder) running back-to-back on a Motorola DSP56600 (Table 1).
//! This crate provides the equivalent workload, built from scratch:
//!
//! * [`dsp`] — LPC signal processing (autocorrelation, Levinson–Durbin,
//!   analysis/synthesis filtering, quantization);
//! * [`Encoder`] / [`Decoder`] — a frame-based codec doing real DSP work;
//! * [`SpeechSource`] — deterministic synthetic speech;
//! * [`CodecTiming`] — per-stage DSP delay annotations calibrated to the
//!   paper's transcoding-delay figures;
//! * [`simulate_unscheduled`] / [`simulate_architecture`] — the two
//!   system-level models whose rows appear in Table 1.
//!
//! ```
//! use vocoder::{simulate_unscheduled, VocoderConfig};
//!
//! # fn main() -> Result<(), sldl_sim::RunError> {
//! let cfg = VocoderConfig { frames: 5, ..VocoderConfig::default() };
//! let run = simulate_unscheduled(&cfg)?;
//! assert_eq!(run.transcode_delays.len(), 5);
//! assert!(run.mean_snr_db > 20.0); // speech survived the codec
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
pub mod dsp;
mod frame;
mod scenario;
mod split;
mod timing;

pub use codec::{Decoder, EncodedFrame, Encoder};
pub use frame::{Frame, SpeechSource, FRAME_PERIOD, FRAME_SAMPLES};
pub use scenario::{
    simulate_architecture, simulate_unscheduled, VocoderConfig, VocoderRun, WatchdogSpec,
};
pub use split::{simulate_split, SplitConfig, SplitRun};
pub use timing::{CodecTiming, StageTiming};
