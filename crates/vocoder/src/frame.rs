//! Speech frames and a synthetic speech source.
//!
//! We cannot ship real GSM speech data, so the source synthesizes
//! vowel-like audio: an impulse-train-excited resonant filter with slowly
//! wandering formants plus noise — enough spectral structure for LPC to
//! have real work to do (see `dsp::tests::residual_energy_is_lower...`).

use std::time::Duration;

use sldl_sim::SimTime;

/// Minimal SplitMix64 generator: speech synthesis must be bit-for-bit
/// reproducible across platforms and crate versions, so we avoid external
/// RNG dependencies here.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[-1, 1)`.
    fn next_signed(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }
}

/// Samples per frame (20 ms at 8 kHz, as in GSM full-rate).
pub const FRAME_SAMPLES: usize = 160;

/// Frame period of the codec.
pub const FRAME_PERIOD: Duration = Duration::from_millis(20);

/// One 20 ms speech frame, stamped with its arrival time for latency
/// measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame sequence number.
    pub seq: u64,
    /// Simulated time at which the frame entered the system (A/D side).
    pub arrived: SimTime,
    /// PCM samples.
    pub samples: Vec<f64>,
}

/// Deterministic synthetic speech generator.
#[derive(Debug, Clone)]
pub struct SpeechSource {
    rng: SplitMix64,
    /// Two-pole resonator state.
    y1: f64,
    y2: f64,
    /// Current resonant frequency (radians/sample) and its drift target.
    omega: f64,
    pitch_phase: usize,
    seq: u64,
}

impl SpeechSource {
    /// Creates a source with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SpeechSource {
            rng: SplitMix64(seed),
            y1: 0.0,
            y2: 0.0,
            omega: 0.25,
            pitch_phase: 0,
            seq: 0,
        }
    }

    /// Produces the next frame, stamped with `now`.
    pub fn next_frame(&mut self, now: SimTime) -> Frame {
        // Slowly wander the formant.
        self.omega = (self.omega + self.rng.next_signed() * 0.01).clamp(0.1, 0.6);
        let r = 0.95;
        let a1 = 2.0 * r * self.omega.cos();
        let a2 = -r * r;
        let pitch = 64; // 125 Hz pitch at 8 kHz
        let samples = (0..FRAME_SAMPLES)
            .map(|_| {
                // Impulse train + breath noise excitation.
                let excitation =
                    if self.pitch_phase == 0 { 4.0 } else { 0.0 } + self.rng.next_signed() * 0.1;
                self.pitch_phase = (self.pitch_phase + 1) % pitch;
                let y = excitation + a1 * self.y1 + a2 * self.y2;
                self.y2 = self.y1;
                self.y1 = y;
                y
            })
            .collect();
        let frame = Frame {
            seq: self.seq,
            arrived: now,
            samples,
        };
        self.seq += 1;
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_deterministic_for_a_seed() {
        let mut a = SpeechSource::new(7);
        let mut b = SpeechSource::new(7);
        for _ in 0..5 {
            assert_eq!(a.next_frame(SimTime::ZERO), b.next_frame(SimTime::ZERO));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SpeechSource::new(1);
        let mut b = SpeechSource::new(2);
        assert_ne!(
            a.next_frame(SimTime::ZERO).samples,
            b.next_frame(SimTime::ZERO).samples
        );
    }

    #[test]
    fn frames_have_structure_lpc_can_exploit() {
        let mut src = SpeechSource::new(42);
        let frame = src.next_frame(SimTime::ZERO);
        assert_eq!(frame.samples.len(), FRAME_SAMPLES);
        let r = crate::dsp::autocorrelate(&frame.samples, 2);
        // Strong lag-1 correlation (resonant signal), not white noise.
        assert!(r[1] / r[0] > 0.5, "lag-1 correlation {}", r[1] / r[0]);
    }

    #[test]
    fn sequence_numbers_increment() {
        let mut src = SpeechSource::new(0);
        assert_eq!(src.next_frame(SimTime::ZERO).seq, 0);
        assert_eq!(src.next_frame(SimTime::ZERO).seq, 1);
    }
}
