//! Linear-predictive-coding signal processing.
//!
//! The paper's case study is a GSM voice codec running as two real-time
//! tasks on a Motorola DSP56600. We implement a self-contained LPC
//! analysis/synthesis codec (autocorrelation → Levinson–Durbin → reflection
//! coefficient quantization → residual coding) so the tasks perform real
//! frame-based DSP work while delay annotations model DSP cycle time.

/// LPC prediction order used throughout the codec.
pub const LPC_ORDER: usize = 10;

/// Computes the first `lags` autocorrelation values of `signal`
/// (`r[k] = Σ s[n]·s[n+k]`).
///
/// # Panics
///
/// Panics if `signal.len() < lags`.
#[must_use]
pub fn autocorrelate(signal: &[f64], lags: usize) -> Vec<f64> {
    assert!(signal.len() >= lags, "signal shorter than requested lags");
    (0..lags)
        .map(|k| {
            signal[..signal.len() - k]
                .iter()
                .zip(&signal[k..])
                .map(|(a, b)| a * b)
                .sum()
        })
        .collect()
}

/// Result of Levinson–Durbin recursion.
#[derive(Debug, Clone, PartialEq)]
pub struct LpcSolution {
    /// Direct-form prediction coefficients `a[1..=order]` such that the
    /// predictor is `ŝ[n] = Σ a[i]·s[n−i]`.
    pub coeffs: Vec<f64>,
    /// Reflection (PARCOR) coefficients, each in `(-1, 1)` for a stable
    /// synthesis filter.
    pub reflection: Vec<f64>,
    /// Final prediction error energy.
    pub error: f64,
}

/// Solves the normal equations by Levinson–Durbin recursion on the
/// autocorrelation sequence `r` (length ≥ order + 1).
///
/// Degenerate input (zero energy) yields an all-zero predictor.
///
/// # Panics
///
/// Panics if `r.len() < order + 1`.
#[must_use]
pub fn levinson_durbin(r: &[f64], order: usize) -> LpcSolution {
    assert!(r.len() > order, "need order+1 autocorrelation lags");
    let mut a = vec![0.0; order + 1];
    let mut reflection = Vec::with_capacity(order);
    let mut e = r[0];
    if e <= 0.0 {
        return LpcSolution {
            coeffs: vec![0.0; order],
            reflection: vec![0.0; order],
            error: 0.0,
        };
    }
    for i in 1..=order {
        let mut acc = r[i];
        for j in 1..i {
            acc -= a[j] * r[i - j];
        }
        let k = acc / e;
        reflection.push(k);
        // Update a[1..=i] in place.
        let prev = a.clone();
        a[i] = k;
        for j in 1..i {
            a[j] = prev[j] - k * prev[i - j];
        }
        e *= 1.0 - k * k;
        if e <= 0.0 {
            e = f64::EPSILON;
        }
    }
    LpcSolution {
        coeffs: a[1..].to_vec(),
        reflection,
        error: e,
    }
}

/// Converts reflection coefficients back to direct-form LPC coefficients
/// (the step-up recursion); inverse of the recursion inside
/// [`levinson_durbin`].
#[must_use]
pub fn reflection_to_lpc(reflection: &[f64]) -> Vec<f64> {
    let order = reflection.len();
    let mut a = vec![0.0; order + 1];
    for (i, &k) in reflection.iter().enumerate() {
        let i = i + 1;
        let prev = a.clone();
        a[i] = k;
        for j in 1..i {
            a[j] = prev[j] - k * prev[i - j];
        }
    }
    a[1..].to_vec()
}

/// Runs the LPC *analysis* filter `A(z)`: produces the prediction residual
/// `e[n] = s[n] − Σ a[i]·s[n−i]`. `history` carries the last `order`
/// samples of the previous frame (oldest first) for seamless framing.
#[must_use]
pub fn analysis_filter(signal: &[f64], coeffs: &[f64], history: &[f64]) -> Vec<f64> {
    let order = coeffs.len();
    assert_eq!(history.len(), order, "history must hold `order` samples");
    let mut out = Vec::with_capacity(signal.len());
    for n in 0..signal.len() {
        let mut pred = 0.0;
        for (i, &a) in coeffs.iter().enumerate() {
            let idx = n as isize - (i as isize + 1);
            let past = if idx >= 0 {
                signal[idx as usize]
            } else {
                history[(history.len() as isize + idx) as usize]
            };
            pred += a * past;
        }
        out.push(signal[n] - pred);
    }
    out
}

/// Runs the LPC *synthesis* filter `1/A(z)`: reconstructs the signal from
/// the residual. `history` carries the last `order` *output* samples of the
/// previous frame (oldest first).
#[must_use]
pub fn synthesis_filter(residual: &[f64], coeffs: &[f64], history: &mut Vec<f64>) -> Vec<f64> {
    let order = coeffs.len();
    assert_eq!(history.len(), order, "history must hold `order` samples");
    let mut out: Vec<f64> = Vec::with_capacity(residual.len());
    for (n, &e) in residual.iter().enumerate() {
        let mut pred = 0.0;
        for (i, &a) in coeffs.iter().enumerate() {
            let idx = n as isize - (i as isize + 1);
            let past = if idx >= 0 {
                out[idx as usize]
            } else {
                history[(history.len() as isize + idx) as usize]
            };
            pred += a * past;
        }
        out.push(e + pred);
    }
    // Carry the filter state into the next frame.
    let keep: Vec<f64> = out[out.len() - order..].to_vec();
    *history = keep;
    out
}

/// Quantizes a reflection coefficient to `bits` bits over `(-1, 1)`.
#[must_use]
pub fn quantize_reflection(k: f64, bits: u32) -> i32 {
    let levels = (1i64 << bits) as f64;
    let clamped = k.clamp(-0.999, 0.999);
    ((clamped * levels / 2.0).round() as i32).clamp(-(1 << (bits - 1)), (1 << (bits - 1)) - 1)
}

/// Inverse of [`quantize_reflection`].
#[must_use]
pub fn dequantize_reflection(q: i32, bits: u32) -> f64 {
    let levels = (1i64 << bits) as f64;
    f64::from(q) * 2.0 / levels
}

/// Signal-to-noise ratio (dB) of `decoded` against `original`.
/// Returns `f64::INFINITY` for a perfect match.
#[must_use]
pub fn snr_db(original: &[f64], decoded: &[f64]) -> f64 {
    assert_eq!(original.len(), decoded.len());
    let sig: f64 = original.iter().map(|s| s * s).sum();
    let noise: f64 = original
        .iter()
        .zip(decoded)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    if noise == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (sig / noise).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1_signal(n: usize, rho: f64) -> Vec<f64> {
        // Deterministic AR(1) driven by a simple LCG.
        let mut state = 0x2545F491u64;
        let mut s = 0.0;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0;
                s = rho * s + noise;
                s
            })
            .collect()
    }

    #[test]
    fn autocorrelation_of_constant_signal() {
        let r = autocorrelate(&[1.0; 8], 3);
        assert_eq!(r, vec![8.0, 7.0, 6.0]);
    }

    #[test]
    fn levinson_recovers_ar1_coefficient() {
        let sig = ar1_signal(4096, 0.8);
        let r = autocorrelate(&sig, 3);
        let sol = levinson_durbin(&r, 2);
        assert!((sol.coeffs[0] - 0.8).abs() < 0.05, "a1 = {}", sol.coeffs[0]);
        assert!(sol.coeffs[1].abs() < 0.08, "a2 = {}", sol.coeffs[1]);
        assert!(sol.error > 0.0 && sol.error < r[0]);
    }

    #[test]
    fn reflection_coefficients_are_stable() {
        let sig = ar1_signal(2048, 0.95);
        let r = autocorrelate(&sig, LPC_ORDER + 1);
        let sol = levinson_durbin(&r, LPC_ORDER);
        assert!(sol.reflection.iter().all(|k| k.abs() < 1.0));
    }

    #[test]
    fn step_up_matches_levinson_coeffs() {
        let sig = ar1_signal(2048, 0.7);
        let r = autocorrelate(&sig, LPC_ORDER + 1);
        let sol = levinson_durbin(&r, LPC_ORDER);
        let rebuilt = reflection_to_lpc(&sol.reflection);
        for (a, b) in sol.coeffs.iter().zip(&rebuilt) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn analysis_then_synthesis_is_identity() {
        let sig = ar1_signal(320, 0.9);
        let r = autocorrelate(&sig[..160], LPC_ORDER + 1);
        let sol = levinson_durbin(&r, LPC_ORDER);
        let history = vec![0.0; LPC_ORDER];
        let residual = analysis_filter(&sig[..160], &sol.coeffs, &history);
        let mut synth_hist = vec![0.0; LPC_ORDER];
        let rebuilt = synthesis_filter(&residual, &sol.coeffs, &mut synth_hist);
        for (a, b) in sig[..160].iter().zip(&rebuilt) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(synth_hist.len(), LPC_ORDER);
    }

    #[test]
    fn residual_energy_is_lower_than_signal_energy() {
        let sig = ar1_signal(2048, 0.9);
        let r = autocorrelate(&sig, LPC_ORDER + 1);
        let sol = levinson_durbin(&r, LPC_ORDER);
        let history = vec![0.0; LPC_ORDER];
        let res = analysis_filter(&sig, &sol.coeffs, &history);
        let sig_e: f64 = sig.iter().map(|s| s * s).sum();
        let res_e: f64 = res.iter().map(|s| s * s).sum();
        assert!(
            res_e < 0.5 * sig_e,
            "prediction should remove most energy: {res_e} vs {sig_e}"
        );
    }

    #[test]
    fn quantize_round_trip_is_close() {
        for &k in &[-0.9, -0.3, 0.0, 0.45, 0.99] {
            let q = quantize_reflection(k, 8);
            let back = dequantize_reflection(q, 8);
            assert!((k.clamp(-0.999, 0.999) - back).abs() < 1.0 / 128.0);
        }
    }

    #[test]
    fn degenerate_zero_signal() {
        let sol = levinson_durbin(&[0.0; LPC_ORDER + 1], LPC_ORDER);
        assert_eq!(sol.coeffs, vec![0.0; LPC_ORDER]);
        assert_eq!(sol.error, 0.0);
    }

    #[test]
    fn snr_of_identical_signals_is_infinite() {
        let s = ar1_signal(64, 0.5);
        assert_eq!(snr_db(&s, &s), f64::INFINITY);
        let noisy: Vec<f64> = s.iter().map(|x| x + 0.01).collect();
        assert!(snr_db(&s, &noisy) > 10.0);
    }
}
