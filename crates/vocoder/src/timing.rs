//! DSP timing annotations for the codec tasks.
//!
//! The paper's implementation ran on a Motorola DSP56600 at 60 MHz; its
//! Table 1 reports a transcoding delay of 9.7 ms for the unscheduled model
//! and 12.5 ms for the RTOS-based architecture model at a 20 ms frame
//! period. We annotate encoder/decoder *subframe* stages (GSM processes
//! 4 × 5 ms subframes per frame) with per-stage DSP times calibrated to
//! those figures: encoding 2.2 ms and decoding 0.925 ms per subframe give
//!
//! * unscheduled (parallel tasks, subframe-pipelined):
//!   `4 × 2.2 + 0.925 ≈ 9.7 ms`;
//! * architecture (both tasks share one DSP, decoder at higher priority):
//!   `4 × (2.2 + 0.925) = 12.5 ms`.

use std::time::Duration;

/// One annotated pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (trace label).
    pub label: &'static str,
    /// Modeled DSP execution time.
    pub duration: Duration,
}

/// Timing annotation set for the codec tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecTiming {
    /// Encoder stages executed once per subframe.
    pub encoder_subframe: Vec<StageTiming>,
    /// Decoder stages executed once per subframe.
    pub decoder_subframe: Vec<StageTiming>,
    /// Subframes per frame.
    pub subframes: u32,
}

impl CodecTiming {
    /// Timing calibrated to the paper's DSP56600 case study (see module
    /// docs).
    #[must_use]
    pub fn dsp56600() -> Self {
        let us = Duration::from_micros;
        CodecTiming {
            encoder_subframe: vec![
                StageTiming {
                    label: "autocorr",
                    duration: us(700),
                },
                StageTiming {
                    label: "levinson",
                    duration: us(450),
                },
                StageTiming {
                    label: "quantize",
                    duration: us(250),
                },
                StageTiming {
                    label: "residual",
                    duration: us(800),
                },
            ],
            decoder_subframe: vec![
                StageTiming {
                    label: "dequant",
                    duration: us(225),
                },
                StageTiming {
                    label: "synthesis",
                    duration: us(600),
                },
                StageTiming {
                    label: "postfilter",
                    duration: us(100),
                },
            ],
            subframes: 4,
        }
    }

    /// Scales every stage by `factor` (for load-sweep ablations).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |s: &StageTiming| StageTiming {
            label: s.label,
            duration: Duration::from_nanos((s.duration.as_nanos() as f64 * factor) as u64),
        };
        CodecTiming {
            encoder_subframe: self.encoder_subframe.iter().map(scale).collect(),
            decoder_subframe: self.decoder_subframe.iter().map(scale).collect(),
            subframes: self.subframes,
        }
    }

    /// Total encoder time per subframe.
    #[must_use]
    pub fn encoder_subframe_total(&self) -> Duration {
        self.encoder_subframe.iter().map(|s| s.duration).sum()
    }

    /// Total decoder time per subframe.
    #[must_use]
    pub fn decoder_subframe_total(&self) -> Duration {
        self.decoder_subframe.iter().map(|s| s.duration).sum()
    }

    /// Total encoder time per frame.
    #[must_use]
    pub fn encoder_total(&self) -> Duration {
        self.encoder_subframe_total() * self.subframes
    }

    /// Total decoder time per frame.
    #[must_use]
    pub fn decoder_total(&self) -> Duration {
        self.decoder_subframe_total() * self.subframes
    }

    /// DSP utilization for a given frame period.
    #[must_use]
    pub fn utilization(&self, period: Duration) -> f64 {
        (self.encoder_total() + self.decoder_total()).as_nanos() as f64 / period.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAME_PERIOD;

    #[test]
    fn dsp56600_calibration_matches_paper_analytics() {
        let t = CodecTiming::dsp56600();
        assert_eq!(t.encoder_subframe_total(), Duration::from_micros(2200));
        assert_eq!(t.decoder_subframe_total(), Duration::from_micros(925));
        // Unscheduled transcode: 4 encoder subframes + 1 decoder subframe.
        let unsched = t.encoder_total() + t.decoder_subframe_total();
        assert_eq!(unsched, Duration::from_micros(9725));
        // Architecture transcode: fully serialized.
        let arch = t.encoder_total() + t.decoder_total();
        assert_eq!(arch, Duration::from_micros(12_500));
        // Feasible on one DSP.
        assert!(t.utilization(FRAME_PERIOD) < 1.0);
    }

    #[test]
    fn scaling_changes_totals_proportionally() {
        let t = CodecTiming::dsp56600();
        let half = t.scaled(0.5);
        assert_eq!(half.encoder_total(), t.encoder_total() / 2);
        assert!((half.utilization(FRAME_PERIOD) - t.utilization(FRAME_PERIOD) / 2.0).abs() < 1e-9);
    }
}
