//! Back-to-back transcoding scenarios for Table 1.
//!
//! Encoder and decoder run "in back-to-back mode" (paper §5): synthetic
//! speech frames arrive every 20 ms, the encoder compresses each frame and
//! streams encoded subframes to the decoder, and the *transcoding delay* is
//! the time from frame arrival to the completion of its decode. Two
//! executions of the same tasks:
//!
//! * [`simulate_unscheduled`] — tasks are truly parallel SLDL processes
//!   (the paper's unscheduled model);
//! * [`simulate_architecture`] — tasks run under one RTOS model instance
//!   (the architecture model), decoder at higher priority.

use std::sync::Arc;
use std::time::Duration;

use rtos_model::{
    MetricsSnapshot, Priority, Rtos, SchedAlg, TaskParams, TimeSlice, WatchdogAction,
};
use sldl_sim::sync::Mutex;
use sldl_sim::{
    ChaosPlan, Child, FaultPlan, KernelInvariants, KernelStats, ProcCtx, Queue, Record, RunError,
    SimTime, Simulation, SyncLayer, TraceConfig, TraceHandle,
};

use crate::codec::{Decoder, EncodedFrame, Encoder};
use crate::dsp::snr_db;
use crate::frame::{Frame, SpeechSource, FRAME_PERIOD};
use crate::timing::CodecTiming;

/// A message from encoder to decoder: one subframe's worth of progress;
/// the final subframe of each frame carries the encoded payload.
#[derive(Debug, Clone)]
pub(crate) struct SubframeMsg {
    pub(crate) payload: Option<Box<EncodedFrame>>,
}

/// Configuration of a vocoder simulation.
#[derive(Debug, Clone)]
pub struct VocoderConfig {
    /// Number of speech frames to transcode.
    pub frames: usize,
    /// Speech-synthesis seed.
    pub seed: u64,
    /// Stage timing annotations.
    pub timing: CodecTiming,
    /// Modeled kernel overhead per context switch in the architecture
    /// model (zero = the paper's idealized model; calibrate against a
    /// target kernel for back-annotation).
    pub switch_cost: Duration,
    /// Seeded fault plan injected at the kernel level
    /// ([`FaultPlan::none`] leaves the run byte-identical to an
    /// uninstrumented one).
    pub faults: FaultPlan,
    /// Optional decoder health watchdog (architecture model only): the
    /// decoder kicks it on every subframe it completes; if the decoder
    /// falls silent for the given timeout — e.g. starved by overruns or
    /// blocked on a dropped notification — the watchdog fires.
    pub watchdog: Option<WatchdogSpec>,
    /// Collect execution traces: task spans, context-switch markers and
    /// scheduler decision records (architecture model), returned in
    /// [`VocoderRun::records`]. Off by default — the hot path stays
    /// record-free.
    pub trace: bool,
    /// Seeded schedule-perturbation plan injected at the kernel level
    /// ([`ChaosPlan::none`] leaves the run byte-identical to an
    /// uninstrumented one).
    pub chaos: ChaosPlan,
    /// Arm the kernel invariant oracle ([`KernelInvariants::all`]) and,
    /// in the architecture model, the RTOS scheduler-conformance checks.
    /// Off by default — disabled oracles cost nothing on the hot path.
    pub oracle: bool,
}

/// A watchdog configuration for [`VocoderConfig::watchdog`].
#[derive(Debug, Clone, Copy)]
pub struct WatchdogSpec {
    /// Silence tolerated before the watchdog fires.
    pub timeout: Duration,
    /// What firing does: abort the run with
    /// [`RunError::WatchdogExpired`](sldl_sim::RunError::WatchdogExpired)
    /// or count the trip in the RTOS metrics.
    pub action: WatchdogAction,
}

impl Default for VocoderConfig {
    fn default() -> Self {
        VocoderConfig {
            frames: 50,
            seed: 0xC0DEC,
            timing: CodecTiming::dsp56600(),
            switch_cost: Duration::ZERO,
            faults: FaultPlan::none(),
            watchdog: None,
            trace: false,
            chaos: ChaosPlan::none(),
            oracle: false,
        }
    }
}

/// Results of a vocoder simulation run.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct VocoderRun {
    /// Simulated end time.
    pub end_time: SimTime,
    /// Per-frame transcoding delay (arrival → decode complete).
    pub transcode_delays: Vec<Duration>,
    /// Context switches of the RTOS instance (0 for unscheduled).
    pub context_switches: u64,
    /// RTOS metrics (architecture model only).
    pub metrics: Option<MetricsSnapshot>,
    /// Mean SNR of decoded speech vs. the source, in dB (proves the codec
    /// really transcoded the data end to end).
    pub mean_snr_db: f64,
    /// Host wall-clock time of the simulation (Table 1 "execution time").
    pub host_time: Duration,
    /// Number of faults the kernel injected (0 without a fault plan).
    pub faults_injected: usize,
    /// Simulation-kernel self-metrics of the run (delta cycles, events
    /// notified, process churn, …). Collected unconditionally.
    pub kernel_stats: KernelStats,
    /// Trace records (empty unless [`VocoderConfig::trace`] was set).
    pub records: Vec<Record>,
}

impl VocoderRun {
    /// Mean transcoding delay.
    ///
    /// # Panics
    ///
    /// Panics if no frame completed.
    #[must_use]
    pub fn mean_transcode_delay(&self) -> Duration {
        assert!(!self.transcode_delays.is_empty(), "no frames transcoded");
        let total: Duration = self.transcode_delays.iter().sum();
        total / u32::try_from(self.transcode_delays.len()).expect("frame count fits u32")
    }

    /// Worst-case transcoding delay.
    #[must_use]
    pub fn max_transcode_delay(&self) -> Option<Duration> {
        self.transcode_delays.iter().copied().max()
    }
}

/// Shared measurement sink.
#[derive(Default)]
pub(crate) struct Sink {
    pub(crate) delays: Vec<Duration>,
    pub(crate) snr_sum: f64,
    pub(crate) snr_count: u32,
}

/// Drives the data path shared by both models. `enc_step`/`dec_step` model
/// the passage of DSP time for one stage (plain `waitfor` vs. RTOS
/// `time_wait`).
#[allow(clippy::too_many_arguments)]
fn spawn_pipeline<L, E, D>(
    sim: &mut Simulation,
    layer: L,
    cfg: &VocoderConfig,
    sink: Arc<Mutex<Sink>>,
    enc_step: E,
    dec_step: D,
    source_kick: impl Fn(&ProcCtx) + Send + 'static,
    wrap_task: impl Fn(Child, &'static str) -> Child,
) where
    L: SyncLayer,
    E: Fn(&ProcCtx, &'static str, Duration) + Send + Sync + 'static,
    D: Fn(&ProcCtx, &'static str, Duration) + Send + Sync + 'static,
{
    // A/D → encoder: unbounded (samples arrive regardless of DSP load).
    let enc_in: Queue<Frame, L> = Queue::unbounded(layer.clone());
    // Encoder → decoder: subframe stream.
    let enc_out: Queue<SubframeMsg, L> = Queue::unbounded(layer);

    // Source: models the A/D converter interrupt, emitting one frame per
    // period; not an RTOS task in either model.
    let frames = cfg.frames;
    let seed = cfg.seed;
    let originals: Arc<Mutex<Vec<Frame>>> = Arc::new(Mutex::new(Vec::new()));
    let tx = enc_in.clone();
    let originals_src = Arc::clone(&originals);
    sim.spawn(Child::new("ad_source", move |ctx| {
        let mut src = SpeechSource::new(seed);
        for _ in 0..frames {
            let frame = src.next_frame(ctx.now());
            originals_src.lock().push(frame.clone());
            tx.send(ctx, frame);
            source_kick(ctx);
            ctx.waitfor(FRAME_PERIOD);
        }
    }));

    // Encoder task.
    let timing = cfg.timing.clone();
    let rx = enc_in;
    let tx = enc_out.clone();
    let encoder_child = Child::new("encoder", move |ctx: &ProcCtx| {
        let mut enc = Encoder::new();
        for _ in 0..frames {
            let frame = rx.recv(ctx);
            for sub in 0..timing.subframes {
                for stage in &timing.encoder_subframe {
                    enc_step(ctx, stage.label, stage.duration);
                }
                let last = sub + 1 == timing.subframes;
                let payload = last.then(|| Box::new(enc.encode(&frame)));
                tx.send(ctx, SubframeMsg { payload });
            }
        }
    });
    sim.spawn(wrap_task(encoder_child, "encoder"));

    // Decoder task.
    let timing = cfg.timing.clone();
    let total_subs = cfg.frames * cfg.timing.subframes as usize;
    let sink2 = Arc::clone(&sink);
    let decoder_child = Child::new("decoder", move |ctx: &ProcCtx| {
        let mut dec = Decoder::new();
        for _ in 0..total_subs {
            let msg = enc_out.recv(ctx);
            for stage in &timing.decoder_subframe {
                dec_step(ctx, stage.label, stage.duration);
            }
            if let Some(encoded) = msg.payload {
                let out = dec.decode(&encoded);
                let mut s = sink2.lock();
                s.delays.push(ctx.now() - out.arrived);
                let original = &originals.lock()[usize::try_from(out.seq).expect("seq fits")];
                let snr = snr_db(&original.samples, &out.samples);
                if snr.is_finite() {
                    s.snr_sum += snr;
                }
                s.snr_count += 1;
            }
        }
    });
    sim.spawn(wrap_task(decoder_child, "decoder"));
}

pub(crate) fn finish(
    report: Result<sldl_sim::Report, RunError>,
    sink: &Arc<Mutex<Sink>>,
    metrics: Option<MetricsSnapshot>,
    trace: Option<TraceHandle>,
    started: std::time::Instant,
) -> Result<VocoderRun, RunError> {
    let report = report?;
    let s = sink.lock();
    Ok(VocoderRun {
        end_time: report.end_time,
        transcode_delays: s.delays.clone(),
        context_switches: metrics.as_ref().map_or(0, |m| m.context_switches),
        mean_snr_db: if s.snr_count == 0 {
            0.0
        } else {
            s.snr_sum / f64::from(s.snr_count)
        },
        metrics,
        host_time: started.elapsed(),
        faults_injected: report.faults.len(),
        kernel_stats: report.kernel,
        records: trace.map(|t| t.snapshot()).unwrap_or_default(),
    })
}

/// Runs the vocoder as an *unscheduled model*: encoder and decoder are
/// truly parallel SLDL processes.
///
/// # Errors
///
/// Returns [`RunError`] if a simulated process panics.
pub fn simulate_unscheduled(cfg: &VocoderConfig) -> Result<VocoderRun, RunError> {
    let started = std::time::Instant::now();
    let mut builder = Simulation::builder()
        .fault_plan(cfg.faults.clone())
        .chaos_plan(cfg.chaos.clone());
    if cfg.oracle {
        builder = builder.invariants(KernelInvariants::all());
    }
    if cfg.trace {
        builder = builder.trace(TraceConfig::default());
    }
    let mut sim = builder.build();
    let trace = sim.trace_handle();
    let layer = sim.sync_layer();
    let sink = Arc::new(Mutex::new(Sink::default()));
    spawn_pipeline(
        &mut sim,
        layer,
        cfg,
        Arc::clone(&sink),
        |ctx, _label, d| ctx.waitfor(d),
        |ctx, _label, d| ctx.waitfor(d),
        |_ctx| {},
        |child, _| child,
    );
    finish(sim.run(), &sink, None, trace, started)
}

/// Runs the vocoder as an *architecture model*: encoder and decoder are
/// RTOS tasks on one DSP, with the decoder at higher priority (it finishes
/// each subframe quickly, minimizing output jitter).
///
/// # Errors
///
/// Returns [`RunError`] if a simulated process panics.
pub fn simulate_architecture(
    cfg: &VocoderConfig,
    alg: SchedAlg,
    slice: TimeSlice,
) -> Result<VocoderRun, RunError> {
    let started = std::time::Instant::now();
    let mut builder = Simulation::builder()
        .fault_plan(cfg.faults.clone())
        .chaos_plan(cfg.chaos.clone());
    if cfg.oracle {
        builder = builder.invariants(KernelInvariants::all());
    }
    if cfg.trace {
        builder = builder.trace(TraceConfig::default());
    }
    let mut sim = builder.build();
    let trace = sim.trace_handle();
    let os = Rtos::new("dsp", sim.sync_layer());
    if cfg.oracle {
        os.set_conformance_checks(true);
    }
    if let Some(t) = &trace {
        os.attach_trace(t.clone());
    }
    os.start(alg);
    os.set_time_slice(slice);
    os.set_context_switch_cost(cfg.switch_cost);
    let sink = Arc::new(Mutex::new(Sink::default()));

    // Decoder health watchdog: armed before the pipeline, kicked on every
    // decoder stage, disarmed when the decoder task completes normally.
    let wd = cfg.watchdog.map(|spec| {
        let (wd, monitor) = os.watchdog("decoder", spec.timeout, spec.action);
        sim.spawn(monitor);
        wd
    });
    let wd_dec = wd.clone();
    let wd_wrap = wd;

    let os_enc = os.clone();
    let os_dec = os.clone();
    let os_src = os.clone();
    let os_wrap = os.clone();
    spawn_pipeline(
        &mut sim,
        os.clone(),
        cfg,
        Arc::clone(&sink),
        move |ctx, label, d| os_enc.time_wait_as(ctx, d, label),
        move |ctx, label, d| {
            os_dec.time_wait_as(ctx, d, label);
            if let Some(wd) = &wd_dec {
                wd.kick(ctx);
            }
        },
        move |ctx| os_src.interrupt_return(ctx),
        move |child, name| {
            let os = os_wrap.clone();
            let prio = match name {
                "decoder" => Priority(1),
                _ => Priority(2),
            };
            let wd = (name == "decoder").then(|| wd_wrap.clone()).flatten();
            let inner = child;
            Child::new(name, move |ctx: &ProcCtx| {
                let me = os.task_create(&TaskParams::aperiodic(name, prio));
                os.task_activate(ctx, me);
                // Run the task body inline.
                (inner.into_body())(ctx);
                // Healthy completion: retire the watchdog before leaving.
                if let Some(wd) = &wd {
                    wd.disarm();
                    wd.kick(ctx);
                }
                os.task_terminate(ctx);
            })
        },
    );
    let report = sim.run();
    let end = match &report {
        Ok(r) => r.end_time,
        Err(_) => SimTime::ZERO,
    };
    let metrics = Some(os.metrics_at(end));
    finish(report, &sink, metrics, trace, started)
}
