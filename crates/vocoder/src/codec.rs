//! Frame-based LPC encoder and decoder.

use crate::dsp::{
    analysis_filter, autocorrelate, dequantize_reflection, levinson_durbin, quantize_reflection,
    reflection_to_lpc, synthesis_filter, LPC_ORDER,
};
use crate::frame::Frame;

use sldl_sim::SimTime;

/// Bits per quantized reflection coefficient.
const REFLECTION_BITS: u32 = 8;
/// Bits per quantized residual sample.
const RESIDUAL_BITS: u32 = 10;

/// A compressed frame produced by the [`Encoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// Sequence number copied from the source frame.
    pub seq: u64,
    /// Arrival stamp of the source frame (for end-to-end latency).
    pub arrived: SimTime,
    /// Quantized reflection coefficients.
    pub reflection_q: Vec<i32>,
    /// Quantized residual, scaled by `gain`.
    pub residual_q: Vec<i16>,
    /// Residual scale exponent (power-of-two gain).
    pub gain_exp: i32,
}

impl EncodedFrame {
    /// Compressed payload size in bits (coefficients + residual + gain).
    #[must_use]
    pub fn payload_bits(&self) -> usize {
        self.reflection_q.len() * REFLECTION_BITS as usize
            + self.residual_q.len() * RESIDUAL_BITS as usize
            + 8
    }
}

/// LPC analysis encoder. Stateful across frames (filter history).
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    history: Vec<f64>,
}

impl Encoder {
    /// Creates an encoder with zeroed filter history.
    #[must_use]
    pub fn new() -> Self {
        Encoder {
            history: vec![0.0; LPC_ORDER],
        }
    }

    /// Encodes one frame: autocorrelation, Levinson–Durbin, reflection
    /// quantization, residual computation and quantization.
    pub fn encode(&mut self, frame: &Frame) -> EncodedFrame {
        if self.history.len() != LPC_ORDER {
            self.history = vec![0.0; LPC_ORDER];
        }
        let r = autocorrelate(&frame.samples, LPC_ORDER + 1);
        let sol = levinson_durbin(&r, LPC_ORDER);
        let reflection_q: Vec<i32> = sol
            .reflection
            .iter()
            .map(|&k| quantize_reflection(k, REFLECTION_BITS))
            .collect();
        // Use the *dequantized* coefficients for the residual so encoder and
        // decoder run the exact same filter (closed-loop consistency).
        let coeffs = reflection_to_lpc(
            &reflection_q
                .iter()
                .map(|&q| dequantize_reflection(q, REFLECTION_BITS))
                .collect::<Vec<_>>(),
        );
        let residual = analysis_filter(&frame.samples, &coeffs, &self.history);
        // Carry analysis history across frames.
        self.history = frame.samples[frame.samples.len() - LPC_ORDER..].to_vec();

        // Block gain: power-of-two exponent covering the residual peak.
        let peak = residual.iter().fold(0.0f64, |m, &e| m.max(e.abs()));
        let max_code = f64::from((1i32 << (RESIDUAL_BITS - 1)) - 1);
        let gain_exp = if peak > 0.0 {
            (peak / max_code).log2().ceil() as i32
        } else {
            0
        };
        let scale = 2f64.powi(gain_exp);
        let residual_q = residual
            .iter()
            .map(|&e| {
                ((e / scale).round() as i32)
                    .clamp(-(1 << (RESIDUAL_BITS - 1)), (1 << (RESIDUAL_BITS - 1)) - 1)
                    as i16
            })
            .collect();
        EncodedFrame {
            seq: frame.seq,
            arrived: frame.arrived,
            reflection_q,
            residual_q,
            gain_exp,
        }
    }
}

/// LPC synthesis decoder. Stateful across frames (filter history).
#[derive(Debug, Clone, Default)]
pub struct Decoder {
    history: Vec<f64>,
}

impl Decoder {
    /// Creates a decoder with zeroed filter history.
    #[must_use]
    pub fn new() -> Self {
        Decoder {
            history: vec![0.0; LPC_ORDER],
        }
    }

    /// Decodes one frame through the synthesis filter.
    pub fn decode(&mut self, enc: &EncodedFrame) -> Frame {
        if self.history.len() != LPC_ORDER {
            self.history = vec![0.0; LPC_ORDER];
        }
        let coeffs = reflection_to_lpc(
            &enc.reflection_q
                .iter()
                .map(|&q| dequantize_reflection(q, REFLECTION_BITS))
                .collect::<Vec<_>>(),
        );
        let scale = 2f64.powi(enc.gain_exp);
        let residual: Vec<f64> = enc
            .residual_q
            .iter()
            .map(|&q| f64::from(q) * scale)
            .collect();
        let samples = synthesis_filter(&residual, &coeffs, &mut self.history);
        Frame {
            seq: enc.seq,
            arrived: enc.arrived,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsp::snr_db;
    use crate::frame::SpeechSource;

    #[test]
    fn round_trip_preserves_speech_quality() {
        let mut src = SpeechSource::new(3);
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let mut total_snr = 0.0;
        let n = 20;
        for _ in 0..n {
            let frame = src.next_frame(SimTime::ZERO);
            let coded = enc.encode(&frame);
            let rebuilt = dec.decode(&coded);
            assert_eq!(rebuilt.seq, frame.seq);
            total_snr += snr_db(&frame.samples, &rebuilt.samples);
        }
        let mean = total_snr / f64::from(n);
        assert!(mean > 20.0, "mean SNR too low: {mean:.1} dB");
    }

    #[test]
    fn payload_is_compressed() {
        let mut src = SpeechSource::new(5);
        let mut enc = Encoder::new();
        let frame = src.next_frame(SimTime::ZERO);
        let coded = enc.encode(&frame);
        // Raw: 160 × 16-bit = 2560 bits. Coded must be smaller.
        assert!(coded.payload_bits() < 2560, "{} bits", coded.payload_bits());
        assert_eq!(coded.reflection_q.len(), LPC_ORDER);
        assert_eq!(coded.residual_q.len(), 160);
    }

    #[test]
    fn decoder_tracks_encoder_state_across_frames() {
        // Decoding a frame stream out of a fresh decoder must equal decoding
        // with a continuously-used one only for the first frame — i.e. the
        // filters genuinely carry state.
        let mut src = SpeechSource::new(8);
        let mut enc = Encoder::new();
        let frames: Vec<_> = (0..3).map(|_| src.next_frame(SimTime::ZERO)).collect();
        let coded: Vec<_> = frames.iter().map(|f| enc.encode(f)).collect();

        let mut cont = Decoder::new();
        let _first = cont.decode(&coded[0]);
        let second_cont = cont.decode(&coded[1]);
        let mut fresh = Decoder::new();
        let second_fresh = fresh.decode(&coded[1]);
        assert_ne!(second_cont.samples, second_fresh.samples);
    }

    #[test]
    fn silence_encodes_to_zero_gain() {
        let mut enc = Encoder::new();
        let frame = Frame {
            seq: 0,
            arrived: SimTime::ZERO,
            samples: vec![0.0; 160],
        };
        let coded = enc.encode(&frame);
        assert!(coded.residual_q.iter().all(|&q| q == 0));
        let mut dec = Decoder::new();
        let out = dec.decode(&coded);
        assert!(out.samples.iter().all(|&s| s.abs() < 1e-12));
    }
}
