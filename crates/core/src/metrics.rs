//! Scheduling metrics collected by the RTOS model.
//!
//! Table 1 of the paper reports *context switches* and *transcoding delay*
//! (a response-time figure) for the refined architecture model; this module
//! provides those measurements plus per-task detail.

use std::time::Duration;

use sldl_sim::SimTime;

use crate::task::TaskId;

/// Per-task accumulated statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskStats {
    /// Task name (copied from the control block).
    pub name: String,
    /// Number of activations (periodic releases or explicit activations).
    pub activations: u64,
    /// Total CPU time consumed.
    pub busy: Duration,
    /// Number of times this task was dispatched onto the CPU.
    pub dispatches: u64,
    /// Number of times the task was preempted while still runnable.
    pub preemptions: u64,
    /// Response times: becoming ready → first dispatch of that activation.
    pub dispatch_latencies: Vec<Duration>,
    /// Periodic tasks: per-cycle response times (release → `task_endcycle`).
    pub cycle_response_times: Vec<Duration>,
    /// Periodic tasks: cycles that completed after their absolute deadline.
    pub deadline_misses: u64,
    /// Releases skipped by [`MissPolicy::SkipCycle`](crate::MissPolicy).
    pub cycles_skipped: u64,
    /// Cycle restarts performed by
    /// [`MissPolicy::RestartTask`](crate::MissPolicy).
    pub restarts: u64,
    /// Priority degradations applied by
    /// [`MissPolicy::Degrade`](crate::MissPolicy) (at most 1).
    pub degradations: u64,
    /// Whether [`MissPolicy::KillTask`](crate::MissPolicy) terminated this
    /// task.
    pub killed_by_policy: bool,
}

impl TaskStats {
    /// Worst observed cycle response time, if any cycle completed.
    #[must_use]
    pub fn worst_cycle_response(&self) -> Option<Duration> {
        self.cycle_response_times.iter().copied().max()
    }

    /// Mean cycle response time, if any cycle completed.
    #[must_use]
    pub fn mean_cycle_response(&self) -> Option<Duration> {
        if self.cycle_response_times.is_empty() {
            return None;
        }
        let total: Duration = self.cycle_response_times.iter().sum();
        Some(total / u32::try_from(self.cycle_response_times.len()).unwrap_or(u32::MAX))
    }
}

/// Snapshot of all metrics of an [`Rtos`](crate::Rtos) instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Number of context switches (change of the dispatched task, counting
    /// a switch from idle as a dispatch, not a context switch — matching
    /// the paper's count of 0 for the unscheduled model).
    pub context_switches: u64,
    /// Total CPU busy time across all tasks.
    pub cpu_busy: Duration,
    /// Time at which the snapshot was taken.
    pub taken_at: SimTime,
    /// Per-task statistics, indexed by [`TaskId::index`].
    pub tasks: Vec<TaskStats>,
    /// Total watchdog expiries observed on this RTOS instance (both
    /// counting and aborting watchdogs; see
    /// [`Rtos::watchdog`](crate::Rtos::watchdog)).
    pub watchdog_trips: u64,
    /// Event notifications delivered from interrupt context — the caller
    /// was not a task of this instance (an ISR process, or a task of a
    /// remote PE waking this one across a bus). Counts the ISR-side
    /// hand-offs of the interrupt-driven receive path.
    pub isr_notifies: u64,
    /// `interrupt_return` invocations on this instance (the ISR epilogue
    /// dispatch points of the paper's Fig. 3(b)).
    pub interrupt_returns: u64,
}

impl MetricsSnapshot {
    /// Statistics for one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not created on the RTOS instance this snapshot
    /// came from.
    #[must_use]
    pub fn task(&self, task: TaskId) -> &TaskStats {
        &self.tasks[task.index()]
    }

    /// CPU utilization in `[0, 1]` relative to the snapshot time.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.taken_at == SimTime::ZERO {
            return 0.0;
        }
        self.cpu_busy.as_nanos() as f64 / self.taken_at.as_nanos() as f64
    }

    /// Total deadline misses across all tasks.
    #[must_use]
    pub fn deadline_misses(&self) -> u64 {
        self.tasks.iter().map(|t| t.deadline_misses).sum()
    }

    /// Total releases skipped by miss policies across all tasks.
    #[must_use]
    pub fn cycles_skipped(&self) -> u64 {
        self.tasks.iter().map(|t| t.cycles_skipped).sum()
    }

    /// Names of tasks killed by [`MissPolicy::KillTask`](crate::MissPolicy).
    #[must_use]
    pub fn killed_tasks(&self) -> Vec<&str> {
        self.tasks
            .iter()
            .filter(|t| t.killed_by_policy)
            .map(|t| t.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_and_mean_cycle_response() {
        let stats = TaskStats {
            cycle_response_times: vec![
                Duration::from_micros(10),
                Duration::from_micros(30),
                Duration::from_micros(20),
            ],
            ..TaskStats::default()
        };
        assert_eq!(
            stats.worst_cycle_response(),
            Some(Duration::from_micros(30))
        );
        assert_eq!(stats.mean_cycle_response(), Some(Duration::from_micros(20)));
        assert_eq!(TaskStats::default().worst_cycle_response(), None);
        assert_eq!(TaskStats::default().mean_cycle_response(), None);
    }

    #[test]
    fn utilization_bounds() {
        let snap = MetricsSnapshot {
            cpu_busy: Duration::from_micros(50),
            taken_at: SimTime::from_micros(100),
            ..MetricsSnapshot::default()
        };
        assert!((snap.utilization() - 0.5).abs() < 1e-9);
        assert_eq!(MetricsSnapshot::default().utilization(), 0.0);
    }

    #[test]
    fn deadline_miss_total() {
        let snap = MetricsSnapshot {
            tasks: vec![
                TaskStats {
                    deadline_misses: 2,
                    ..TaskStats::default()
                },
                TaskStats {
                    deadline_misses: 3,
                    ..TaskStats::default()
                },
            ],
            ..MetricsSnapshot::default()
        };
        assert_eq!(snap.deadline_misses(), 5);
    }
}
