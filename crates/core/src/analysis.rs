//! Analytic schedulability tests for periodic task sets.
//!
//! Classic fixed-priority response-time analysis (RTA, Joseph & Pandya /
//! Audsley) and the Liu–Layland RMS utilization bound, from the paper's
//! reference \[5\] (Buttazzo, *Hard Real-Time Computing Systems*). The test
//! suite cross-validates these analytic bounds against the simulated RTOS
//! model: simulated worst-case response times must never exceed RTA's.

use std::time::Duration;

/// An analyzed periodic task: worst-case execution time and period
/// (implicit deadline = period).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicSpec {
    /// Worst-case execution time per cycle.
    pub wcet: Duration,
    /// Release period (and implicit deadline).
    pub period: Duration,
}

impl PeriodicSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `wcet` exceeds `period`’s
    /// representable range.
    #[must_use]
    pub fn new(wcet: Duration, period: Duration) -> Self {
        assert!(!period.is_zero(), "period must be nonzero");
        PeriodicSpec { wcet, period }
    }

    /// Utilization `wcet / period`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet.as_nanos() as f64 / self.period.as_nanos() as f64
    }
}

/// Total utilization of a task set.
#[must_use]
pub fn total_utilization(tasks: &[PeriodicSpec]) -> f64 {
    tasks.iter().map(PeriodicSpec::utilization).sum()
}

/// The Liu–Layland bound `n(2^(1/n) − 1)`: a task set whose utilization is
/// at or below this is RMS-schedulable regardless of its structure.
#[must_use]
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Fixed-priority response-time analysis under rate-monotonic ordering
/// (shorter period = higher priority), preemptive, synchronous release.
///
/// Returns the worst-case response time per task (same order as the
/// input), or `None` if some task's response exceeds its period — the set
/// is unschedulable under RMS.
///
/// The recurrence `R = C_i + Σ_{j ∈ hp(i)} ⌈R/T_j⌉·C_j` is iterated to a
/// fixed point.
#[must_use]
pub fn rta_rms(tasks: &[PeriodicSpec]) -> Option<Vec<Duration>> {
    let mut responses = vec![Duration::ZERO; tasks.len()];
    for i in 0..tasks.len() {
        let ci = tasks[i].wcet.as_nanos();
        let mut r = ci;
        loop {
            let mut demand = ci;
            // Interference from every task that can rank at or above i.
            // Equal periods are counted in *both* directions because the
            // scheduler's tie-break (ready order) is arbitrary — the
            // standard conservative treatment.
            for (j, t) in tasks.iter().enumerate() {
                if j == i || t.period > tasks[i].period {
                    continue;
                }
                demand += r.div_ceil(t.period.as_nanos()) * t.wcet.as_nanos();
            }
            if demand == r {
                break;
            }
            r = demand;
            if r > tasks[i].period.as_nanos() {
                return None;
            }
        }
        if r > tasks[i].period.as_nanos() {
            return None;
        }
        responses[i] = Duration::from_nanos(u64::try_from(r).ok()?);
    }
    Some(responses)
}

/// EDF exact test for implicit deadlines: schedulable iff utilization ≤ 1.
#[must_use]
pub fn edf_schedulable(tasks: &[PeriodicSpec]) -> bool {
    total_utilization(tasks) <= 1.0 + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn utilization_sums() {
        let tasks = [
            PeriodicSpec::new(ms(1), ms(4)),
            PeriodicSpec::new(ms(2), ms(8)),
        ];
        assert!((total_utilization(&tasks) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn liu_layland_known_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-4);
        // n → ∞: ln 2 ≈ 0.6931.
        assert!((liu_layland_bound(10_000) - std::f64::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn rta_textbook_example() {
        // Buttazzo-style example: C=(1,2,3), T=(4,8,12) — utilization
        // 0.5 + 0.25? No: 1/4 + 2/8 + 3/12 = 0.75.
        let tasks = [
            PeriodicSpec::new(ms(1), ms(4)),
            PeriodicSpec::new(ms(2), ms(8)),
            PeriodicSpec::new(ms(3), ms(12)),
        ];
        let r = rta_rms(&tasks).expect("schedulable");
        // R1 = 1. R2 = 2 + ⌈R2/4⌉·1 → 3. R3 = 3 + ⌈R/4⌉ + ⌈R/8⌉·2 → 3+1+2=6
        // → 3+2+2=7 → 3+2+2=7 ✓.
        assert_eq!(r[0], ms(1));
        assert_eq!(r[1], ms(3));
        assert_eq!(r[2], ms(7));
    }

    #[test]
    fn rta_detects_unschedulable() {
        let tasks = [
            PeriodicSpec::new(ms(3), ms(4)),
            PeriodicSpec::new(ms(3), ms(8)),
        ];
        assert!(rta_rms(&tasks).is_none());
        assert!(!edf_schedulable(&tasks));
    }

    #[test]
    fn edf_boundary() {
        let tasks = [
            PeriodicSpec::new(ms(2), ms(4)),
            PeriodicSpec::new(ms(4), ms(8)),
        ];
        assert!(edf_schedulable(&tasks)); // exactly 1.0
                                          // RMS cannot always do utilization 1.0, but this harmonic set works.
        assert!(rta_rms(&tasks).is_some());
    }

    #[test]
    fn single_task_response_is_its_wcet() {
        let tasks = [PeriodicSpec::new(ms(5), ms(20))];
        assert_eq!(rta_rms(&tasks).unwrap(), vec![ms(5)]);
    }

    #[test]
    #[should_panic(expected = "period must be nonzero")]
    fn zero_period_rejected() {
        let _ = PeriodicSpec::new(ms(1), Duration::ZERO);
    }
}
