//! Task types, parameters and control blocks.

use core::fmt;
use std::time::Duration;

use sldl_sim::{EventId, ProcessId, SimTime};

/// Handle to an RTOS task (the `proc` handle of the paper's Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// Raw index of this task, useful for metrics post-processing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Static priority of a task: **lower values are more urgent** (priority 0
/// is the most urgent), following the µC/OS and POSIX `SCHED_FIFO`-inverse
/// convention used throughout this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u32);

impl Priority {
    /// The most urgent priority.
    pub const HIGHEST: Priority = Priority(0);
    /// The least urgent priority.
    pub const LOWEST: Priority = Priority(u32::MAX);
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// Kind of real-time task, matching the paper's task model: "periodic hard
/// real time tasks with a critical deadline and non-periodic real time
/// tasks with a fixed priority".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Released every `period`; the implicit deadline is the next release.
    /// Must call [`Rtos::task_endcycle`](crate::Rtos::task_endcycle) at the
    /// end of each cycle.
    Periodic {
        /// Release period (also the implicit relative deadline).
        period: Duration,
    },
    /// Activated on demand, scheduled by fixed priority (or by the optional
    /// `deadline` under EDF).
    Aperiodic,
}

/// What the RTOS does when a periodic task exhausts its overrun budget —
/// its number of *consecutive* deadline misses reaches the budget set by
/// [`TaskParams::miss_budget`]. Applied inside
/// [`Rtos::task_endcycle`](crate::Rtos::task_endcycle).
///
/// Every policy still counts each miss in `TaskStats::deadline_misses`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum MissPolicy {
    /// Only count the miss (the classic "monitor, don't intervene" mode
    /// and the default — scheduling is identical to a policy-free model).
    #[default]
    Count,
    /// Skip the release(s) the task can no longer meet: the next release
    /// is moved past the current time, shedding the backlog so the task
    /// re-synchronizes with its period. Skipped releases are counted in
    /// `TaskStats::cycles_skipped`.
    SkipCycle,
    /// Kill the task: it is terminated on the spot and
    /// [`Rtos::task_endcycle`](crate::Rtos::task_endcycle) returns
    /// [`CycleOutcome::Stop`](crate::CycleOutcome) so its process can
    /// unwind. Recorded in `TaskStats::killed_by_policy`.
    KillTask,
    /// Restart the task's cycle phase: the next release is *now*, the
    /// consecutive-miss counter resets, and the task continues as if
    /// freshly activated. Counted in `TaskStats::restarts`.
    RestartTask,
    /// Permanently degrade the task to the given (less urgent) priority,
    /// shedding load for the benefit of the remaining tasks. Applied at
    /// most once; counted in `TaskStats::degradations`.
    Degrade(Priority),
}

/// Parameters for [`Rtos::task_create`](crate::Rtos::task_create)
/// (non-consuming builder).
///
/// ```
/// use rtos_model::{Priority, TaskParams};
/// use std::time::Duration;
///
/// let mut p = TaskParams::periodic("encoder", Duration::from_millis(20));
/// p.priority(Priority(2)).wcet(Duration::from_millis(9));
/// assert_eq!(p.name(), "encoder");
/// ```
#[derive(Debug, Clone)]
pub struct TaskParams {
    pub(crate) name: String,
    pub(crate) kind: TaskKind,
    pub(crate) priority: Priority,
    pub(crate) wcet: Duration,
    pub(crate) deadline: Option<Duration>,
    pub(crate) miss_policy: MissPolicy,
    pub(crate) miss_budget: u32,
}

impl TaskParams {
    /// Parameters for an aperiodic task with the given fixed `priority`.
    pub fn aperiodic(name: impl Into<String>, priority: Priority) -> Self {
        TaskParams {
            name: name.into(),
            kind: TaskKind::Aperiodic,
            priority,
            wcet: Duration::ZERO,
            deadline: None,
            miss_policy: MissPolicy::Count,
            miss_budget: 1,
        }
    }

    /// Parameters for a periodic task released every `period`.
    ///
    /// The default priority is [`Priority::LOWEST`]; under RMS and EDF the
    /// period/deadline dominates, under fixed-priority scheduling set one
    /// explicitly with [`priority`](TaskParams::priority).
    pub fn periodic(name: impl Into<String>, period: Duration) -> Self {
        TaskParams {
            name: name.into(),
            kind: TaskKind::Periodic { period },
            priority: Priority::LOWEST,
            wcet: Duration::ZERO,
            deadline: None,
            miss_policy: MissPolicy::Count,
            miss_budget: 1,
        }
    }

    /// Sets the static priority.
    pub fn priority(&mut self, priority: Priority) -> &mut Self {
        self.priority = priority;
        self
    }

    /// Sets the worst-case execution time annotation (informational; used
    /// for utilization reporting).
    pub fn wcet(&mut self, wcet: Duration) -> &mut Self {
        self.wcet = wcet;
        self
    }

    /// Sets an explicit relative deadline (defaults to the period for
    /// periodic tasks; aperiodic tasks without a deadline run as background
    /// work under EDF).
    pub fn deadline(&mut self, deadline: Duration) -> &mut Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline-miss policy applied when the overrun budget is
    /// exhausted (default [`MissPolicy::Count`]).
    pub fn miss_policy(&mut self, policy: MissPolicy) -> &mut Self {
        self.miss_policy = policy;
        self
    }

    /// Sets the overrun budget: the number of *consecutive* deadline
    /// misses after which the [`miss_policy`](TaskParams::miss_policy)
    /// fires (default 1 — the policy fires on the first miss). A
    /// successful cycle resets the counter.
    ///
    /// A budget of 0 is treated as 1.
    pub fn miss_budget(&mut self, budget: u32) -> &mut Self {
        self.miss_budget = budget.max(1);
        self
    }

    /// The task name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task kind.
    #[must_use]
    pub fn kind(&self) -> TaskKind {
        self.kind
    }
}

/// Lifecycle state of a task, as in a conventional RTOS ("tasks transition
/// between different states and a task queue is associated with each
/// state" — paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Created but not yet activated.
    Created,
    /// In the ready queue, waiting for the CPU.
    Ready,
    /// Currently dispatched (at most one task per RTOS instance).
    Running,
    /// Blocked on an RTOS event queue.
    Blocked,
    /// Suspended (`task_sleep`) or waiting for its next periodic release.
    Sleeping,
    /// Suspended in `par_start`, waiting for its children to finish.
    Forking,
    /// Terminated or killed.
    Terminated,
}

/// Task control block (crate internal).
#[derive(Debug)]
pub(crate) struct Tcb {
    pub(crate) name: String,
    pub(crate) kind: TaskKind,
    /// Current (possibly inherited) priority used by the scheduler.
    pub(crate) priority: Priority,
    /// Assigned priority, restored when an inherited boost ends.
    pub(crate) base_priority: Priority,
    pub(crate) wcet: Duration,
    pub(crate) deadline: Option<Duration>,
    pub(crate) state: TaskState,
    /// SLDL event used to block/dispatch this task's process.
    pub(crate) dispatch_ev: EventId,
    /// SLDL process bound to this task (set on first self-activation).
    pub(crate) pid: Option<ProcessId>,
    /// Sequence number of entry into the ready queue (FIFO/RR ordering).
    pub(crate) ready_seq: u64,
    /// Current release time (periodic) or activation time (aperiodic).
    pub(crate) release_time: SimTime,
    /// Current absolute deadline (EDF key); `SimTime::MAX` when none.
    pub(crate) abs_deadline: SimTime,
    /// Set when the task became ready, cleared at first dispatch of the
    /// activation; used for response-time metrics.
    pub(crate) ready_since: Option<SimTime>,
    /// Time of last dispatch (for busy-time accounting).
    pub(crate) dispatched_at: Option<SimTime>,
    /// CPU time consumed in the current round-robin quantum.
    pub(crate) quantum_used: Duration,
    /// Kernel overhead to consume when this task resumes (set at dispatch
    /// after a context switch).
    pub(crate) pending_overhead: Duration,
    /// End of the task's most recent `time_wait` step: the completion time
    /// of its computation, used for cycle response times so preemption
    /// between finishing work and calling `task_endcycle` is not charged.
    pub(crate) last_cpu_end: SimTime,
    /// Deadline-miss policy applied when the overrun budget is exhausted.
    pub(crate) miss_policy: MissPolicy,
    /// Consecutive misses tolerated before the policy fires (>= 1).
    pub(crate) miss_budget: u32,
    /// Current run of consecutive deadline misses.
    pub(crate) consecutive_misses: u32,
    /// Intrusive link: next task in the waited-on event's queue.
    pub(crate) wait_next: Option<TaskId>,
    /// Intrusive link: previous task in the waited-on event's queue.
    pub(crate) wait_prev: Option<TaskId>,
    /// Index of the RTOS event this task is queued on, if blocked on one.
    pub(crate) waiting_on: Option<u32>,
}

impl Tcb {
    pub(crate) fn period(&self) -> Option<Duration> {
        match self.kind {
            TaskKind::Periodic { period } => Some(period),
            TaskKind::Aperiodic => None,
        }
    }

    /// Relative deadline: explicit, else the period, else none.
    pub(crate) fn relative_deadline(&self) -> Option<Duration> {
        self.deadline.or_else(|| self.period())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_lower_is_more_urgent() {
        assert!(Priority::HIGHEST < Priority::LOWEST);
        assert!(Priority(1) < Priority(2));
    }

    #[test]
    fn params_builder_chains() {
        let mut p = TaskParams::aperiodic("isr-handler", Priority(1));
        p.wcet(Duration::from_micros(50))
            .deadline(Duration::from_millis(1));
        assert_eq!(p.name(), "isr-handler");
        assert_eq!(p.kind(), TaskKind::Aperiodic);
        assert_eq!(p.deadline, Some(Duration::from_millis(1)));
    }

    #[test]
    fn periodic_params_default_lowest_priority() {
        let p = TaskParams::periodic("enc", Duration::from_millis(20));
        assert_eq!(p.priority, Priority::LOWEST);
        assert_eq!(
            p.kind(),
            TaskKind::Periodic {
                period: Duration::from_millis(20)
            }
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaskId(4).to_string(), "task4");
        assert_eq!(Priority(3).to_string(), "prio3");
    }
}
