//! # rtos-model — an abstract RTOS model for system-level design
//!
//! Reproduction of the primary contribution of *RTOS Modeling for System
//! Level Design* (Gerstlauer, Yu, Gajski — DATE 2003): a high-level model
//! of a real-time operating system written **on top of** an SLDL simulation
//! kernel ([`sldl_sim`]), providing the key features of any RTOS — task
//! management, real-time scheduling, preemption, task synchronization and
//! interrupt handling — so that the dynamic behavior of multi-tasking
//! systems can be validated in abstract architecture models, long before a
//! real RTOS and instruction-set simulator exist.
//!
//! ## The interface (paper Figure 4)
//!
//! | Paper call          | This crate                                  |
//! |---------------------|---------------------------------------------|
//! | `init`              | [`Rtos::init`]                              |
//! | `start(alg)`        | [`Rtos::start`]                             |
//! | `interrupt_return`  | [`Rtos::interrupt_return`]                  |
//! | `task_create`       | [`Rtos::task_create`] + [`TaskParams`]      |
//! | `task_terminate`    | [`Rtos::task_terminate`]                    |
//! | `task_sleep`        | [`Rtos::task_sleep`]                        |
//! | `task_activate`     | [`Rtos::task_activate`]                     |
//! | `task_endcycle`     | [`Rtos::task_endcycle`]                     |
//! | `task_kill`         | [`Rtos::task_kill`]                         |
//! | `par_start`         | [`Rtos::par_start`]                         |
//! | `par_end`           | [`Rtos::par_end`]                           |
//! | `event_new`         | [`Rtos::event_new`]                         |
//! | `event_del`         | [`Rtos::event_del`]                         |
//! | `event_wait`        | [`Rtos::event_wait`]                        |
//! | `event_notify`      | [`Rtos::event_notify`]                      |
//! | `time_wait`         | [`Rtos::time_wait`]                         |
//!
//! ## Example: two tasks under priority scheduling
//!
//! ```
//! use rtos_model::{Priority, Rtos, SchedAlg, TaskParams};
//! use sldl_sim::{Child, Simulation};
//! use std::time::Duration;
//!
//! let mut sim = Simulation::new();
//! let os = Rtos::new("pe0", sim.sync_layer());
//! os.start(SchedAlg::PriorityPreemptive);
//!
//! for (name, prio, work_us) in [("hi", 1u32, 100u64), ("lo", 2, 300)] {
//!     let os = os.clone();
//!     sim.spawn(Child::new(name, move |ctx| {
//!         let me = os.task_create(&TaskParams::aperiodic(name, Priority(prio)));
//!         os.task_activate(ctx, me);
//!         os.time_wait(ctx, Duration::from_micros(work_us));
//!         os.task_terminate(ctx);
//!     }));
//! }
//!
//! let report = sim.run().unwrap();
//! // Serialized: 100us + 300us, not max(100, 300).
//! assert_eq!(report.end_time.as_micros(), 400);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod metrics;
mod mutex;
pub mod readyq;
mod rtos;
mod sched;
mod task;

pub use metrics::{MetricsSnapshot, TaskStats};
pub use mutex::{InheritancePolicy, MutexError, RtosMutex};
pub use rtos::{CycleOutcome, Rtos, RtosEvent, TimeSlice, Watchdog, WatchdogAction};
pub use sched::SchedAlg;
pub use task::{MissPolicy, Priority, TaskId, TaskKind, TaskParams, TaskState};
