//! The abstract RTOS model (paper Figure 4 interface).
//!
//! An [`Rtos`] instance is the paper's "RTOS model channel": one per
//! processing element, shared by the PE's tasks, interrupt handlers, and
//! refined communication channels. It serializes task execution on top of
//! the SLDL kernel — at any simulated instant at most one task of the
//! instance is running; all others are blocked on per-task SLDL *dispatch
//! events* — and re-implements SLDL synchronization (`event_wait` /
//! `event_notify`) so that the internal task states stay consistent.
//!
//! Preemption is modeled at the granularity of task delay annotations: an
//! interrupt that wakes a high-priority task takes effect when the running
//! task's current [`time_wait`](Rtos::time_wait) step completes (paper
//! Fig. 8(b): the switch at `t4` is delayed to `t4'`). An optional
//! [`TimeSlice`] refines that granularity for accuracy studies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sldl_sim::sync::Mutex;
use sldl_sim::{
    AbortReason, Child, CompactKind, DecisionReason, EventId, LabelId, ProcCtx, ProcessId, SimTime,
    SldlSync, SyncLayer, TraceHandle, TrackId,
};

use crate::metrics::{MetricsSnapshot, TaskStats};
use crate::readyq::ReadyQueue;
use crate::sched::SchedAlg;
use crate::task::{MissPolicy, Priority, TaskId, TaskParams, TaskState, Tcb};

/// Handle to an RTOS-level event (the `evt` of the paper's Figure 4).
///
/// RTOS events replace SLDL events during dynamic-scheduling refinement:
/// blocking on one suspends the calling *task* in the RTOS ready/event
/// queues, keeping the scheduler's bookkeeping consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RtosEvent(u32);

impl RtosEvent {
    /// Raw index of this event.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for RtosEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rtos-evt{}", self.0)
    }
}

/// Granularity at which [`Rtos::time_wait`] models preemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeSlice {
    /// One step per delay annotation (the paper's model): preemption takes
    /// effect at the end of the current delay. Cheapest; accuracy bounded
    /// by the granularity of the delay model (paper §4.3).
    #[default]
    WholeDelay,
    /// Split delays into steps of at most the given quantum: a preempted
    /// task retains the remainder of its delay and resumes it when
    /// re-dispatched. More scheduler invocations, higher accuracy.
    Quantum(Duration),
}

/// What [`Rtos::task_endcycle`] asks the periodic task's process to do
/// next. `Stop` is returned when the task's [`MissPolicy`] terminated it
/// (`KillTask`); the process must unwind without further RTOS calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a killed task must unwind instead of continuing its loop"]
pub enum CycleOutcome {
    /// The next cycle has been released and dispatched; keep looping.
    Continue,
    /// The task was terminated by its deadline-miss policy; return from
    /// the process body without calling the RTOS again.
    Stop,
}

/// Reaction of a [`Watchdog`] when its timeout elapses without a kick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WatchdogAction {
    /// Abort the whole simulation with
    /// [`RunError::WatchdogExpired`](sldl_sim::RunError::WatchdogExpired)
    /// naming this watchdog — the fail-stop configuration.
    #[default]
    AbortRun,
    /// Record the trip in [`MetricsSnapshot::watchdog_trips`] and keep
    /// watching — the monitoring configuration.
    Count,
}

/// Health-monitoring watchdog created by [`Rtos::watchdog`].
///
/// The returned monitor process (spawn it on the simulation) waits for
/// periodic [`kick`](Watchdog::kick)s; if `timeout` elapses without one,
/// the configured [`WatchdogAction`] fires. Cloneable so several tasks can
/// share the kick duty.
///
/// Disarm with [`disarm`](Watchdog::disarm) followed by a final
/// [`kick`](Watchdog::kick) to retire the monitor immediately; a disarmed
/// monitor that is not kicked exits at its next scheduled wake instead.
#[derive(Clone)]
pub struct Watchdog {
    name: Arc<String>,
    kick_ev: EventId,
    armed: Arc<AtomicBool>,
}

impl core::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Watchdog")
            .field("name", &*self.name)
            .field("armed", &self.armed.load(Ordering::SeqCst))
            .finish()
    }
}

impl Watchdog {
    /// The watchdog's name (as reported by `RunError::WatchdogExpired`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feeds the watchdog: restarts its timeout window.
    pub fn kick(&self, ctx: &ProcCtx) {
        ctx.notify(self.kick_ev);
    }

    /// Permanently disarms the watchdog. Follow with a [`kick`] from a
    /// process context to wake and retire the monitor immediately.
    ///
    /// [`kick`]: Watchdog::kick
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Whether the watchdog is still armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }
}

/// An RTOS event's waiter queue: an intrusive doubly-linked list threaded
/// through the waiting tasks' TCBs (`wait_next`/`wait_prev`/`waiting_on`).
/// Tasks are appended at the tail and notified head-first, preserving the
/// old `Vec` push order; enqueue, unlink (kill, timeout withdrawal) and
/// drain are all O(1) per task with no per-event allocation.
struct OsEvent {
    alive: bool,
    head: Option<TaskId>,
    tail: Option<TaskId>,
}

/// Attached trace handle plus interned ids for the RTOS's own tracks, so
/// the dispatch/span hot paths never allocate strings.
struct TraceIds {
    handle: TraceHandle,
    /// `"{pe}:sched"` — scheduler decision records.
    sched_track: TrackId,
    /// `"{pe}:switch"` — context-switch markers.
    switch_track: TrackId,
    /// `"{pe}:mutex"` — mutex wait/acquire/release records.
    mutex_track: TrackId,
    /// Per-task interned ids, lazily filled:
    /// (name-as-track, name-as-label, `"→name"` switch label).
    per_task: Vec<Option<(TrackId, LabelId, LabelId)>>,
}

impl TraceIds {
    fn new(handle: TraceHandle, pe: &str) -> Self {
        let sched_track = handle.intern_track(&format!("{pe}:sched"));
        let switch_track = handle.intern_track(&format!("{pe}:switch"));
        let mutex_track = handle.intern_track(&format!("{pe}:mutex"));
        TraceIds {
            handle,
            sched_track,
            switch_track,
            mutex_track,
            per_task: Vec::new(),
        }
    }
}

/// Cached interned ids for `task`, or `None` when no trace is attached.
/// Interns (and allocates) only on first sight of a task.
fn task_trace_ids(st: &mut OsState, task: TaskId) -> Option<(TrackId, LabelId, LabelId)> {
    let idx = task.index();
    let cached = st.trace.as_ref()?.per_task.get(idx).copied().flatten();
    if cached.is_some() {
        return cached;
    }
    let name = st.tasks[idx].name.clone();
    let tr = st.trace.as_mut().expect("checked above");
    if tr.per_task.len() <= idx {
        tr.per_task.resize(idx + 1, None);
    }
    let ids = (
        tr.handle.intern_track(&name),
        tr.handle.intern_label(&name),
        tr.handle.intern_label(&format!("→{name}")),
    );
    tr.per_task[idx] = Some(ids);
    Some(ids)
}

struct OsState {
    alg: SchedAlg,
    started: bool,
    slice: TimeSlice,
    /// Modeled kernel overhead consumed by a task when it is dispatched
    /// after a context switch (zero by default, as in the paper).
    switch_cost: Duration,
    tasks: Vec<Tcb>,
    by_pid: HashMap<ProcessId, TaskId>,
    /// Indexed ready structure keyed by [`SchedAlg::queue_rank`]; rebuilt
    /// by [`Rtos::start`] when the algorithm changes.
    ready: ReadyQueue,
    running: Option<TaskId>,
    last_dispatched: Option<TaskId>,
    seq: u64,
    events: Vec<OsEvent>,
    /// Reusable buffer for draining an event's waiter list in
    /// [`Rtos::event_notify`] without allocating per notify.
    waiter_scratch: Vec<TaskId>,
    trace: Option<TraceIds>,
    /// Why the CPU was last vacated, consumed by the next dispatch to emit
    /// a scheduler *decision* record: (displaced task, reason).
    pending_decision: Option<(TaskId, DecisionReason)>,
    context_switches: u64,
    cpu_busy: Duration,
    stats: Vec<TaskStats>,
    watchdog_trips: u64,
    /// Event notifications delivered from interrupt context (the caller
    /// was not a task of this instance — an ISR process or a remote PE).
    isr_notifies: u64,
    /// `interrupt_return` invocations (ISR epilogue dispatch points).
    interrupt_returns: u64,
    /// When set, every dispatch asserts scheduler conformance (exactly one
    /// running task, dispatched task is Ready, rank-minimal pick) and
    /// reports breaches as [`RunError::InvariantViolation`] instead of
    /// silently corrupting the schedule.
    ///
    /// [`RunError::InvariantViolation`]: sldl_sim::RunError::InvariantViolation
    conformance: bool,
}

struct Inner {
    name: String,
    layer: SldlSync,
    state: Mutex<OsState>,
}

/// The RTOS model: an abstract real-time operating system providing task
/// management, dynamic scheduling, event synchronization, interrupt
/// handling, and time modeling on top of the SLDL kernel.
///
/// Clonable (all clones share the instance) so it can be handed to every
/// task process, ISR process, and refined channel of a processing element.
///
/// ```
/// use rtos_model::{Priority, Rtos, SchedAlg, TaskParams};
/// use sldl_sim::{Child, Simulation};
/// use std::time::Duration;
///
/// let mut sim = Simulation::new();
/// let os = Rtos::new("pe0", sim.sync_layer());
/// os.start(SchedAlg::PriorityPreemptive);
///
/// let os2 = os.clone();
/// sim.spawn(Child::new("task_main", move |ctx| {
///     let me = os2.task_create(&TaskParams::aperiodic("main", Priority(1)));
///     os2.task_activate(ctx, me);
///     os2.time_wait(ctx, Duration::from_micros(500));
///     os2.task_terminate(ctx);
/// }));
///
/// sim.run().unwrap();
/// assert_eq!(os.metrics().context_switches, 0);
/// ```
pub struct Rtos {
    inner: Arc<Inner>,
}

impl Clone for Rtos {
    fn clone(&self) -> Self {
        Rtos {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl core::fmt::Debug for Rtos {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("Rtos")
            .field("name", &self.inner.name)
            .field("alg", &st.alg)
            .field("tasks", &st.tasks.len())
            .field("running", &st.running)
            .finish()
    }
}

impl Rtos {
    // -- OS management ------------------------------------------------------

    /// Creates an RTOS model instance named `name` (typically the PE name)
    /// on the given SLDL synchronization layer.
    ///
    /// The instance starts unconfigured; call [`start`](Rtos::start) before
    /// activating tasks.
    #[must_use]
    pub fn new(name: impl Into<String>, layer: SldlSync) -> Self {
        Rtos {
            inner: Arc::new(Inner {
                name: name.into(),
                layer,
                state: Mutex::new(OsState {
                    alg: SchedAlg::PriorityPreemptive,
                    started: false,
                    slice: TimeSlice::WholeDelay,
                    switch_cost: Duration::ZERO,
                    tasks: Vec::new(),
                    by_pid: HashMap::new(),
                    ready: ReadyQueue::for_alg(SchedAlg::PriorityPreemptive),
                    running: None,
                    last_dispatched: None,
                    seq: 0,
                    events: Vec::new(),
                    waiter_scratch: Vec::new(),
                    trace: None,
                    pending_decision: None,
                    context_switches: 0,
                    cpu_busy: Duration::ZERO,
                    stats: Vec::new(),
                    watchdog_trips: 0,
                    isr_notifies: 0,
                    interrupt_returns: 0,
                    conformance: false,
                }),
            }),
        }
    }

    /// The instance name (processing-element name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The SLDL synchronization layer this instance models on top of.
    #[must_use]
    pub fn sync_layer(&self) -> SldlSync {
        self.inner.layer.clone()
    }

    /// The name `task` was created with.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not created on this instance.
    #[must_use]
    pub fn task_name(&self, task: TaskId) -> String {
        self.inner.state.lock().tasks[task.index()].name.clone()
    }

    /// Re-initializes the kernel data structures (the paper's `init`):
    /// clears all tasks, events, and metrics.
    ///
    /// # Panics
    ///
    /// Panics if a task is currently running.
    pub fn init(&self) {
        let mut st = self.inner.state.lock();
        assert!(
            st.running.is_none(),
            "init() while a task is running on {}",
            self.inner.name
        );
        st.started = false;
        st.tasks.clear();
        st.by_pid.clear();
        st.ready.clear();
        st.running = None;
        st.last_dispatched = None;
        st.events.clear();
        st.pending_decision = None;
        if let Some(tr) = st.trace.as_mut() {
            // Task ids are reused after init; drop the stale interned ids.
            tr.per_task.clear();
        }
        st.context_switches = 0;
        st.cpu_busy = Duration::ZERO;
        st.stats.clear();
        st.watchdog_trips = 0;
        st.isr_notifies = 0;
        st.interrupt_returns = 0;
    }

    /// Starts multi-task scheduling with the given algorithm (the paper's
    /// `start(sched_alg)`).
    pub fn start(&self, alg: SchedAlg) {
        let mut st = self.inner.state.lock();
        st.alg = alg;
        st.started = true;
        // Re-key the ready structure for the new algorithm (defensive: a
        // re-start with tasks already queued must not strand them under
        // stale ranks or in the wrong structure shape).
        let queued: Vec<TaskId> = st.ready.iter_live().map(TaskId).collect();
        st.ready = ReadyQueue::for_alg(alg);
        for t in queued {
            let rank = st.alg.queue_rank(&st.tasks[t.index()]);
            st.ready.insert(t.0, rank);
        }
    }

    /// Sets the preemption-modeling granularity of
    /// [`time_wait`](Rtos::time_wait) (ablation A1 in `DESIGN.md`).
    pub fn set_time_slice(&self, slice: TimeSlice) {
        self.inner.state.lock().slice = slice;
    }

    /// Models a fixed kernel overhead per context switch: after every
    /// switch, the newly dispatched task consumes `cost` of CPU time
    /// before resuming its code. Zero by default (the paper's idealized
    /// model); calibrate against a target kernel for back-annotation
    /// (`cargo run -p bench --bin calibration`).
    pub fn set_context_switch_cost(&self, cost: Duration) {
        self.inner.state.lock().switch_cost = cost;
    }

    /// Attaches a trace: task execution segments (one track per task,
    /// labeled by the `time_wait` annotation), context-switch markers
    /// (`"{pe}:switch"`), scheduler decision records (`"{pe}:sched"`:
    /// who got the CPU, who lost it, and why), and mutex wait/acquire/
    /// release records (`"{pe}:mutex"`, contributed by
    /// [`RtosMutex`](crate::RtosMutex)) are recorded to it. Track and
    /// label names are interned once, so recording is allocation-free.
    pub fn attach_trace(&self, trace: TraceHandle) {
        let ids = TraceIds::new(trace, &self.inner.name);
        self.inner.state.lock().trace = Some(ids);
    }

    /// Enables (or disables) scheduler conformance checking: every dispatch
    /// then asserts that the CPU was idle, that the picked task was Ready,
    /// and that its scheduling rank is minimal over the ready queue under
    /// the active [`SchedAlg`]. A breach surfaces as
    /// [`RunError::InvariantViolation`] naming the `scheduler-conformance`
    /// invariant and the offending task — the RTOS-layer analogue of the
    /// kernel's [`KernelInvariants`] oracle, intended for chaos/torture
    /// runs. Off by default: the checks cost one ready-queue scan per
    /// dispatch and are structurally absent when disabled.
    ///
    /// [`RunError::InvariantViolation`]: sldl_sim::RunError::InvariantViolation
    /// [`KernelInvariants`]: sldl_sim::KernelInvariants
    pub fn set_conformance_checks(&self, on: bool) {
        self.inner.state.lock().conformance = on;
    }

    /// Notifies the kernel that an interrupt service routine has finished
    /// (the paper's `interrupt_return`): if the CPU is idle, the most
    /// urgent ready task — typically one the ISR just woke — is dispatched.
    pub fn interrupt_return(&self, ctx: &ProcCtx) {
        let mut st = self.inner.state.lock();
        st.interrupt_returns += 1;
        self.dispatch_if_idle(&mut st, ctx);
    }

    /// The scheduling algorithm currently in effect.
    #[must_use]
    pub fn algorithm(&self) -> SchedAlg {
        self.inner.state.lock().alg
    }

    /// Snapshot of scheduling metrics (context switches, per-task response
    /// times, CPU utilization).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let st = self.inner.state.lock();
        MetricsSnapshot {
            context_switches: st.context_switches,
            cpu_busy: st.cpu_busy,
            taken_at: SimTime::ZERO, // patched below; needs a ctx-free time
            tasks: st.stats.clone(),
            watchdog_trips: st.watchdog_trips,
            isr_notifies: st.isr_notifies,
            interrupt_returns: st.interrupt_returns,
        }
    }

    /// Snapshot of scheduling metrics stamped with the current simulated
    /// time (for utilization computations).
    #[must_use]
    pub fn metrics_at(&self, now: SimTime) -> MetricsSnapshot {
        let mut m = self.metrics();
        m.taken_at = now;
        m
    }

    /// Current lifecycle state of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not created on this instance.
    #[must_use]
    pub fn task_state(&self, task: TaskId) -> TaskState {
        self.inner.state.lock().tasks[task.index()].state
    }

    /// Temporarily raises `task`'s priority to be at least as urgent as
    /// `to` (it never lowers). Used by priority-inheritance protocols
    /// ([`RtosMutex`](crate::RtosMutex)); undo with
    /// [`restore_priority`](Rtos::restore_priority).
    ///
    /// # Panics
    ///
    /// Panics if `task` was not created on this instance.
    pub fn boost_priority(&self, task: TaskId, to: Priority) {
        let mut st = self.inner.state.lock();
        let tcb = &mut st.tasks[task.index()];
        let boosted = tcb.priority.min(to);
        if boosted != tcb.priority {
            tcb.priority = boosted;
            // A READY task's queue key embeds its priority: re-rank it.
            self.requeue_if_ready(&mut st, task);
        }
    }

    /// Restores `task`'s priority to its assigned (base) value, ending any
    /// inherited boost.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not created on this instance.
    pub fn restore_priority(&self, task: TaskId) {
        let mut st = self.inner.state.lock();
        let tcb = &mut st.tasks[task.index()];
        if tcb.priority != tcb.base_priority {
            tcb.priority = tcb.base_priority;
            self.requeue_if_ready(&mut st, task);
        }
    }

    /// The task bound to the calling process, if any (tasks bind at their
    /// first [`task_activate`](Rtos::task_activate)).
    #[must_use]
    pub fn current_task(&self, ctx: &ProcCtx) -> Option<TaskId> {
        self.inner.state.lock().by_pid.get(&ctx.pid()).copied()
    }

    /// `task`'s current (possibly inherited) priority.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not created on this instance.
    #[must_use]
    pub fn task_priority(&self, task: TaskId) -> Priority {
        self.inner.state.lock().tasks[task.index()].priority
    }

    /// Planned processor utilization of the periodic task set:
    /// `Σ wcet_i / period_i`. Under RMS the Liu–Layland bound
    /// `n(2^(1/n) − 1)` guarantees schedulability; under EDF any value
    /// ≤ 1 does.
    #[must_use]
    pub fn planned_utilization(&self) -> f64 {
        let st = self.inner.state.lock();
        st.tasks
            .iter()
            .filter_map(|t| {
                let period = t.period()?;
                if period.is_zero() {
                    return None;
                }
                Some(t.wcet.as_nanos() as f64 / period.as_nanos() as f64)
            })
            .sum()
    }

    // -- Task management ----------------------------------------------------

    /// Creates a task from `params` (the paper's `task_create`), returning
    /// its handle. The task starts in [`TaskState::Created`]; the SLDL
    /// process that will embody it must call
    /// [`task_activate`](Rtos::task_activate) with the handle.
    pub fn task_create(&self, params: &TaskParams) -> TaskId {
        let dispatch_ev = self.inner.layer.ev_new();
        let mut st = self.inner.state.lock();
        let id = TaskId(u32::try_from(st.tasks.len()).expect("task ids exhausted"));
        st.tasks.push(Tcb {
            name: params.name.clone(),
            kind: params.kind,
            priority: params.priority,
            base_priority: params.priority,
            wcet: params.wcet,
            deadline: params.deadline,
            state: TaskState::Created,
            dispatch_ev,
            pid: None,
            ready_seq: 0,
            release_time: SimTime::ZERO,
            abs_deadline: SimTime::MAX,
            ready_since: None,
            dispatched_at: None,
            quantum_used: Duration::ZERO,
            pending_overhead: Duration::ZERO,
            last_cpu_end: SimTime::ZERO,
            miss_policy: params.miss_policy,
            miss_budget: params.miss_budget.max(1),
            consecutive_misses: 0,
            wait_next: None,
            wait_prev: None,
            waiting_on: None,
        });
        st.stats.push(TaskStats {
            name: params.name.clone(),
            ..TaskStats::default()
        });
        id
    }

    /// Activates a task (the paper's `task_activate`). Two uses:
    ///
    /// * **Self-activation** (first call, from the task's own SLDL
    ///   process): binds the process to the task, inserts the task into the
    ///   ready queue, and blocks until the scheduler dispatches it. For
    ///   periodic tasks this is the first release.
    /// * **Resumption** (from another task or an ISR): moves a
    ///   [`TaskState::Sleeping`] task back to the ready queue; the caller —
    ///   if it is a task — passes through a preemption point.
    ///
    /// # Panics
    ///
    /// Panics if scheduling has not been [`start`](Rtos::start)ed, if the
    /// task was terminated, or if a resumption targets a non-sleeping task.
    pub fn task_activate(&self, ctx: &ProcCtx, task: TaskId) {
        let mut st = self.inner.state.lock();
        assert!(
            st.started,
            "{}: task_activate before start()",
            self.inner.name
        );
        let tcb = &st.tasks[task.index()];
        assert!(
            tcb.state != TaskState::Terminated,
            "{}: activating terminated {task}",
            self.inner.name
        );
        let self_activation = tcb.pid.is_none();
        if self_activation {
            let now = ctx.now();
            st.tasks[task.index()].pid = Some(ctx.pid());
            st.by_pid.insert(ctx.pid(), task);
            // First release: set release time and absolute deadline.
            let tcb = &mut st.tasks[task.index()];
            tcb.release_time = now;
            tcb.abs_deadline = match tcb.relative_deadline() {
                Some(d) => now + d,
                None => SimTime::MAX,
            };
            st.stats[task.index()].activations += 1;
            self.trace_task_released(&mut st, now, task, now);
            self.make_ready(&mut st, task, now, false);
            self.dispatch_if_idle(&mut st, ctx);
            drop(st);
            self.wait_until_dispatched(ctx, task);
        } else {
            assert_ne!(
                st.tasks[task.index()].pid,
                Some(ctx.pid()),
                "{}: {task} re-activated itself",
                self.inner.name
            );
            assert_eq!(
                st.tasks[task.index()].state,
                TaskState::Sleeping,
                "{}: resuming {task} which is not sleeping",
                self.inner.name
            );
            let now = ctx.now();
            st.stats[task.index()].activations += 1;
            self.make_ready(&mut st, task, now, false);
            self.dispatch_if_idle(&mut st, ctx);
            drop(st);
            self.preempt_point(ctx, false);
        }
    }

    /// Terminates the calling task (the paper's `task_terminate`): frees
    /// the CPU and dispatches the next ready task. The SLDL process should
    /// return right after.
    ///
    /// # Panics
    ///
    /// Panics if the caller is not the running task.
    pub fn task_terminate(&self, ctx: &ProcCtx) {
        let mut st = self.inner.state.lock();
        let tid = self.running_caller(&st, ctx);
        let now = ctx.now();
        self.undispatch(&mut st, tid, now, DecisionReason::Terminate);
        st.tasks[tid.index()].state = TaskState::Terminated;
        if let Some(pid) = st.tasks[tid.index()].pid {
            st.by_pid.remove(&pid);
        }
        self.dispatch_best(&mut st, ctx);
    }

    /// Suspends the calling task until another task or ISR resumes it with
    /// [`task_activate`](Rtos::task_activate) (the paper's `task_sleep`).
    ///
    /// # Panics
    ///
    /// Panics if the caller is not the running task.
    pub fn task_sleep(&self, ctx: &ProcCtx) {
        let tid = {
            let mut st = self.inner.state.lock();
            let tid = self.running_caller(&st, ctx);
            let now = ctx.now();
            self.undispatch(&mut st, tid, now, DecisionReason::Yield);
            st.tasks[tid.index()].state = TaskState::Sleeping;
            self.dispatch_best(&mut st, ctx);
            tid
        };
        self.wait_until_dispatched(ctx, tid);
    }

    /// Kills another task (the paper's `task_kill`): removes it from all
    /// queues, marks it terminated, and unwinds its SLDL process. A task
    /// terminates *itself* with [`task_terminate`](Rtos::task_terminate).
    ///
    /// Killing an already-terminated task is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `task` is the caller's own task or is currently running.
    pub fn task_kill(&self, ctx: &ProcCtx, task: TaskId) {
        let victim_pid = {
            let mut st = self.inner.state.lock();
            if st.tasks[task.index()].state == TaskState::Terminated {
                return;
            }
            assert_ne!(
                st.running,
                Some(task),
                "{}: task_kill on the running {task} (use task_terminate)",
                self.inner.name
            );
            assert_ne!(
                st.tasks[task.index()].pid,
                Some(ctx.pid()),
                "{}: task_kill on the caller's own task",
                self.inner.name
            );
            st.ready.remove(task.0);
            self.unlink_waiter(&mut st, task);
            st.tasks[task.index()].state = TaskState::Terminated;
            let pid = st.tasks[task.index()].pid.take();
            if let Some(pid) = pid {
                st.by_pid.remove(&pid);
            }
            pid
        };
        if let Some(pid) = victim_pid {
            ctx.cancel(pid);
        }
    }

    /// Ends the current cycle of a periodic task (the paper's
    /// `task_endcycle`): records the cycle's response time and deadline
    /// status, applies the task's [`MissPolicy`] when its overrun budget
    /// is exhausted, then suspends until the next release. If the cycle
    /// overran its period, the task is released again immediately.
    ///
    /// Returns [`CycleOutcome::Stop`] when the policy terminated the task
    /// (`MissPolicy::KillTask`); the process must unwind without further
    /// RTOS calls. All other paths return [`CycleOutcome::Continue`] after
    /// the next release is dispatched.
    ///
    /// # Panics
    ///
    /// Raises a model-misuse error if the caller is not the running task
    /// or is not periodic.
    #[track_caller]
    pub fn task_endcycle(&self, ctx: &ProcCtx) -> CycleOutcome {
        let (tid, next_release) = {
            let mut st = self.inner.state.lock();
            let tid = self.running_caller(&st, ctx);
            let now = ctx.now();
            let period = match st.tasks[tid.index()].period() {
                Some(p) => p,
                None => {
                    drop(st);
                    ctx.misuse_layer(
                        &self.inner.name,
                        format!("task_endcycle on aperiodic {tid}"),
                    );
                }
            };
            let release = st.tasks[tid.index()].release_time;
            let deadline = st.tasks[tid.index()].abs_deadline;
            // The cycle completes when its computation does (end of the
            // last time_wait step); preemption between that completion and
            // this bookkeeping call is not part of the response.
            let completion = st.tasks[tid.index()].last_cpu_end.max(release);
            st.stats[tid.index()]
                .cycle_response_times
                .push(completion - release);
            let missed = completion > deadline;
            if missed {
                st.stats[tid.index()].deadline_misses += 1;
                st.tasks[tid.index()].consecutive_misses += 1;
            } else {
                st.tasks[tid.index()].consecutive_misses = 0;
            }
            let mut next_release = release + period;
            // The overrun budget is exhausted: apply the miss policy.
            if missed
                && st.tasks[tid.index()].consecutive_misses >= st.tasks[tid.index()].miss_budget
            {
                match st.tasks[tid.index()].miss_policy {
                    MissPolicy::Count => {}
                    MissPolicy::SkipCycle => {
                        // Shed the backlog: skip every release that is
                        // already in the past so the task re-synchronizes
                        // with its period instead of chasing it.
                        while next_release <= now {
                            next_release += period;
                            st.stats[tid.index()].cycles_skipped += 1;
                        }
                        st.tasks[tid.index()].consecutive_misses = 0;
                    }
                    MissPolicy::KillTask => {
                        st.stats[tid.index()].killed_by_policy = true;
                        self.undispatch(&mut st, tid, now, DecisionReason::MissPolicy);
                        st.tasks[tid.index()].state = TaskState::Terminated;
                        if let Some(pid) = st.tasks[tid.index()].pid {
                            st.by_pid.remove(&pid);
                        }
                        self.dispatch_best(&mut st, ctx);
                        return CycleOutcome::Stop;
                    }
                    MissPolicy::RestartTask => {
                        // Re-phase: the next release is *now*; the task
                        // continues as if freshly activated.
                        st.stats[tid.index()].restarts += 1;
                        st.tasks[tid.index()].consecutive_misses = 0;
                        next_release = now;
                    }
                    MissPolicy::Degrade(p) => {
                        if st.stats[tid.index()].degradations == 0 {
                            st.stats[tid.index()].degradations += 1;
                            let tcb = &mut st.tasks[tid.index()];
                            let boosted = tcb.priority < tcb.base_priority;
                            tcb.base_priority = tcb.base_priority.max(p);
                            if !boosted {
                                tcb.priority = tcb.base_priority;
                            }
                        }
                        st.tasks[tid.index()].consecutive_misses = 0;
                    }
                }
            }
            {
                let tcb = &mut st.tasks[tid.index()];
                tcb.release_time = next_release;
                tcb.abs_deadline = match tcb.relative_deadline() {
                    Some(d) => next_release + d,
                    None => SimTime::MAX,
                };
            }
            self.trace_task_released(&mut st, now, tid, next_release);
            self.undispatch(&mut st, tid, now, DecisionReason::EndCycle);
            st.tasks[tid.index()].state = TaskState::Sleeping;
            st.stats[tid.index()].activations += 1;
            self.dispatch_best(&mut st, ctx);
            (tid, next_release)
        };
        // Wait (outside the RTOS: pure passage of time) for the release.
        let now = ctx.now();
        if next_release > now {
            ctx.waitfor(next_release - now);
        }
        let mut st = self.inner.state.lock();
        let now = ctx.now();
        self.make_ready(&mut st, tid, now, false);
        self.dispatch_if_idle(&mut st, ctx);
        drop(st);
        self.wait_until_dispatched(ctx, tid);
        CycleOutcome::Continue
    }

    /// Suspends the calling task before it forks children with the SLDL
    /// `par` (the paper's `par_start`): the CPU is released so the child
    /// tasks can be scheduled. Follow with the `par` composition and then
    /// [`par_end`](Rtos::par_end).
    ///
    /// # Panics
    ///
    /// Panics if the caller is not the running task.
    pub fn par_start(&self, ctx: &ProcCtx) {
        let mut st = self.inner.state.lock();
        let tid = self.running_caller(&st, ctx);
        let now = ctx.now();
        self.undispatch(&mut st, tid, now, DecisionReason::ParFork);
        st.tasks[tid.index()].state = TaskState::Forking;
        self.dispatch_best(&mut st, ctx);
        // Do not block here: the caller proceeds into the SLDL `par`, which
        // suspends the process at the SLDL level until the children finish.
    }

    /// Resumes the calling task after its SLDL `par` completed (the paper's
    /// `par_end`): re-enters the ready queue and blocks until dispatched.
    ///
    /// # Panics
    ///
    /// Panics if the caller's task is not in the [`TaskState::Forking`]
    /// state.
    #[track_caller]
    pub fn par_end(&self, ctx: &ProcCtx) {
        let tid = {
            let mut st = self.inner.state.lock();
            let tid = match st.by_pid.get(&ctx.pid()).copied() {
                Some(t) => t,
                None => {
                    drop(st);
                    ctx.misuse_layer(&self.inner.name, "par_end by unbound process");
                }
            };
            assert_eq!(
                st.tasks[tid.index()].state,
                TaskState::Forking,
                "{}: par_end without par_start",
                self.inner.name
            );
            let now = ctx.now();
            self.make_ready(&mut st, tid, now, false);
            self.dispatch_if_idle(&mut st, ctx);
            tid
        };
        self.wait_until_dispatched(ctx, tid);
    }

    // -- Event handling -----------------------------------------------------

    /// Allocates an RTOS event (the paper's `event_new`).
    pub fn event_new(&self) -> RtosEvent {
        let mut st = self.inner.state.lock();
        let id = RtosEvent(u32::try_from(st.events.len()).expect("event ids exhausted"));
        st.events.push(OsEvent {
            alive: true,
            head: None,
            tail: None,
        });
        id
    }

    /// Deletes an RTOS event (the paper's `event_del`).
    ///
    /// # Panics
    ///
    /// Panics if the event was already deleted or still has waiting tasks.
    pub fn event_del(&self, event: RtosEvent) {
        let mut st = self.inner.state.lock();
        let e = &mut st.events[event.index()];
        assert!(e.alive, "{}: {event} deleted twice", self.inner.name);
        assert!(
            e.head.is_none(),
            "{}: deleting {event} with waiting tasks",
            self.inner.name
        );
        e.alive = false;
    }

    /// Blocks the calling task until `event` is notified (the paper's
    /// `event_wait`): the task is suspended into the event queue and the
    /// next ready task is dispatched.
    ///
    /// # Panics
    ///
    /// Panics if the caller is not the running task (ISRs must not block)
    /// or the event has been deleted.
    pub fn event_wait(&self, ctx: &ProcCtx, event: RtosEvent) {
        let tid = {
            let mut st = self.inner.state.lock();
            assert!(
                st.events[event.index()].alive,
                "{}: event_wait on deleted {event}",
                self.inner.name
            );
            let tid = self.running_caller(&st, ctx);
            let now = ctx.now();
            self.undispatch(&mut st, tid, now, DecisionReason::Block);
            st.tasks[tid.index()].state = TaskState::Blocked;
            self.enqueue_waiter(&mut st, event, tid);
            self.dispatch_best(&mut st, ctx);
            tid
        };
        self.wait_until_dispatched(ctx, tid);
    }

    /// Like [`event_wait`](Rtos::event_wait) with an upper bound on the
    /// blocking time: returns `true` if `event` was notified, `false` if
    /// `timeout` simulated time elapsed first. On timeout the task leaves
    /// the event queue, re-enters the ready queue, and competes for the
    /// CPU as usual — the return value tells the caller *why* it resumed.
    ///
    /// A notification arriving in the same instant as the timeout wins the
    /// race (the wait counts as satisfied).
    ///
    /// # Panics
    ///
    /// Raises a model-misuse error if the caller is not the running task
    /// or the event has been deleted.
    #[track_caller]
    pub fn event_wait_timeout(&self, ctx: &ProcCtx, event: RtosEvent, timeout: Duration) -> bool {
        let deadline = ctx.now() + timeout;
        let tid = {
            let mut st = self.inner.state.lock();
            if !st.events[event.index()].alive {
                drop(st);
                ctx.misuse_layer(
                    &self.inner.name,
                    format!("event_wait_timeout on deleted {event}"),
                );
            }
            let tid = self.running_caller(&st, ctx);
            let now = ctx.now();
            self.undispatch(&mut st, tid, now, DecisionReason::Block);
            st.tasks[tid.index()].state = TaskState::Blocked;
            self.enqueue_waiter(&mut st, event, tid);
            self.dispatch_best(&mut st, ctx);
            tid
        };
        enum Next {
            Done,
            WaitTimed(EventId, Duration),
            Wait(EventId),
        }
        let mut fired = true;
        loop {
            let next = {
                let mut st = self.inner.state.lock();
                if st.running == Some(tid) {
                    Next::Done
                } else {
                    let now = ctx.now();
                    let ev = st.tasks[tid.index()].dispatch_ev;
                    if fired && now >= deadline {
                        if st.tasks[tid.index()].waiting_on == Some(event.0) {
                            // Timed out while still queued: withdraw and
                            // compete for the CPU.
                            self.unlink_waiter(&mut st, tid);
                            self.make_ready(&mut st, tid, now, false);
                            self.dispatch_if_idle(&mut st, ctx);
                            fired = false;
                        }
                        // else: a notify released us at (or before) the
                        // deadline instant — the wait counts as satisfied.
                        if st.running == Some(tid) {
                            Next::Done
                        } else {
                            Next::Wait(ev)
                        }
                    } else if fired {
                        Next::WaitTimed(ev, deadline - now)
                    } else {
                        Next::Wait(ev)
                    }
                }
            };
            match next {
                Next::Done => break,
                Next::WaitTimed(ev, d) => {
                    let _ = ctx.wait_timeout(ev, d);
                }
                Next::Wait(ev) => ctx.wait(ev),
            }
        }
        self.consume_switch_overhead(ctx, tid);
        fired
    }

    /// Notifies `event` (the paper's `event_notify`): **all** tasks waiting
    /// on it move back to the ready queue. A task caller passes through a
    /// preemption point (it may lose the CPU to a task it just woke); an
    /// ISR caller triggers a dispatch only if the CPU is idle — a running
    /// task is preempted at its next delay-step boundary, as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if the event has been deleted.
    pub fn event_notify(&self, ctx: &ProcCtx, event: RtosEvent) {
        let caller_is_task = {
            let mut st = self.inner.state.lock();
            assert!(
                st.events[event.index()].alive,
                "{}: event_notify on deleted {event}",
                self.inner.name
            );
            let now = ctx.now();
            // Drain the intrusive waiter list head-first (registration
            // order) into the reusable scratch buffer, then requeue.
            let mut woken = std::mem::take(&mut st.waiter_scratch);
            woken.clear();
            self.drain_waiters(&mut st, event, &mut woken);
            for &t in &woken {
                self.make_ready(&mut st, t, now, false);
            }
            woken.clear();
            st.waiter_scratch = woken;
            let is_task = st.by_pid.get(&ctx.pid()).copied() == st.running && st.running.is_some();
            if !is_task {
                st.isr_notifies += 1;
                self.dispatch_if_idle(&mut st, ctx);
            }
            is_task
        };
        if caller_is_task {
            self.preempt_point(ctx, false);
        }
    }

    // -- Time modeling ------------------------------------------------------

    /// Models the calling task consuming `delay` of CPU time (the paper's
    /// `time_wait`): wraps the SLDL `waitfor` so the scheduler can switch
    /// tasks whenever time advances. Under [`TimeSlice::Quantum`] the delay
    /// is split into steps and a preempted task retains the remainder.
    ///
    /// # Panics
    ///
    /// Panics if the caller is not the running task.
    pub fn time_wait(&self, ctx: &ProcCtx, delay: Duration) {
        self.time_wait_as(ctx, delay, "busy");
    }

    /// Like [`time_wait`](Rtos::time_wait), labeling the trace segments
    /// with `label` (the delay-annotation names `d1..d8` in Fig. 8).
    pub fn time_wait_as(&self, ctx: &ProcCtx, delay: Duration, label: &str) {
        {
            // Validate caller state up front.
            let st = self.inner.state.lock();
            let _ = self.running_caller(&st, ctx);
        }
        // Fault hook: WCET jitter may stretch the computation annotation
        // (see `sldl_sim::FaultPlan`). Identity unless a plan is armed —
        // only *computation* delays route through here, never the passage
        // of time between periodic releases.
        let delay = ctx.perturb_delay(delay);
        let quantum = match self.inner.state.lock().slice {
            TimeSlice::WholeDelay => None,
            TimeSlice::Quantum(q) => Some(q),
        };
        // Let all activity of the current instant settle (tasks activated in
        // later delta cycles of the same time step), then give a more urgent
        // task the CPU before consuming any time — this is what makes the
        // higher-priority child win at t0 in the paper's Fig. 8(b).
        ctx.waitfor(Duration::ZERO);
        self.preempt_point(ctx, false);
        let mut remaining = delay;
        while !remaining.is_zero() {
            let step = quantum.map_or(remaining, |q| q.min(remaining));
            self.span_begin(ctx, label);
            ctx.waitfor(step);
            self.span_end(ctx);
            remaining -= step;
            {
                let mut st = self.inner.state.lock();
                let tid = self.running_caller(&st, ctx);
                st.tasks[tid.index()].quantum_used += step;
                st.tasks[tid.index()].last_cpu_end = ctx.now();
            }
            ctx.waitfor(Duration::ZERO);
            // Rotating out a task whose delay is fully consumed is pointless
            // (it proceeds straight to its next RTOS call), so round-robin
            // rotation only applies mid-delay.
            self.preempt_point(ctx, !remaining.is_zero());
        }
    }

    // -- Health monitoring --------------------------------------------------

    /// Creates a [`Watchdog`] named `name` with the given `timeout` and
    /// `action`, returning the handle and the monitor process. Spawn the
    /// monitor on the simulation (top level or inside a `par`); tasks then
    /// [`kick`](Watchdog::kick) the handle more often than `timeout`.
    ///
    /// The monitor is a plain SLDL process (it never blocks the RTOS
    /// scheduler); with [`WatchdogAction::Count`] each trip increments
    /// [`MetricsSnapshot::watchdog_trips`] and the watch continues, with
    /// [`WatchdogAction::AbortRun`] the first trip ends the run with
    /// [`RunError::WatchdogExpired`](sldl_sim::RunError::WatchdogExpired).
    ///
    /// An armed watchdog keeps the simulation alive (it always has a
    /// pending timer): [`disarm`](Watchdog::disarm) it — plus a final kick
    /// — when the workload is done, or bound the run with
    /// [`Simulation::run_until`](sldl_sim::Simulation::run_until).
    #[must_use]
    pub fn watchdog(
        &self,
        name: impl Into<String>,
        timeout: Duration,
        action: WatchdogAction,
    ) -> (Watchdog, Child) {
        let name = Arc::new(name.into());
        let wd = Watchdog {
            name: Arc::clone(&name),
            kick_ev: self.inner.layer.ev_new(),
            armed: Arc::new(AtomicBool::new(true)),
        };
        let handle = wd.clone();
        let os = self.clone();
        let monitor = Child::new(format!("watchdog:{name}"), move |ctx| {
            while handle.armed.load(Ordering::SeqCst) {
                if ctx.wait_timeout(handle.kick_ev, timeout).is_none()
                    && handle.armed.load(Ordering::SeqCst)
                {
                    match action {
                        WatchdogAction::AbortRun => {
                            ctx.abort_run(AbortReason::Watchdog {
                                name: (*handle.name).clone(),
                            });
                        }
                        WatchdogAction::Count => {
                            os.inner.state.lock().watchdog_trips += 1;
                        }
                    }
                }
            }
        });
        (wd, monitor)
    }

    // -- Internals ----------------------------------------------------------

    /// The caller's task id, raising a model-misuse error if the caller is
    /// not the running task.
    #[track_caller]
    fn running_caller(&self, st: &OsState, ctx: &ProcCtx) -> TaskId {
        let tid = match st.by_pid.get(&ctx.pid()).copied() {
            Some(t) => t,
            None => ctx.misuse_layer(
                &self.inner.name,
                format!("process `{}` is not bound to a task", ctx.name()),
            ),
        };
        if st.running != Some(tid) {
            ctx.misuse_layer(
                &self.inner.name,
                format!(
                    "task-context call from `{}` while {tid} is not running",
                    ctx.name()
                ),
            );
        }
        tid
    }

    /// Inserts `task` into the ready queue. `keep_seq` preserves the FIFO
    /// position (used when requeueing a preempted task).
    fn make_ready(&self, st: &mut OsState, task: TaskId, now: SimTime, keep_seq: bool) {
        debug_assert!(!st.ready.contains(task.0), "{task} already ready");
        if !keep_seq {
            st.seq += 1;
            st.tasks[task.index()].ready_seq = st.seq;
        }
        let tcb = &mut st.tasks[task.index()];
        tcb.state = TaskState::Ready;
        if tcb.ready_since.is_none() {
            tcb.ready_since = Some(now);
        }
        let rank = st.alg.queue_rank(&st.tasks[task.index()]);
        st.ready.insert(task.0, rank);
    }

    /// Re-ranks a queued task after its priority changed (inheritance
    /// boost/restore can target a READY task). No-op otherwise: a running,
    /// sleeping or blocked task is keyed when it next becomes ready.
    fn requeue_if_ready(&self, st: &mut OsState, task: TaskId) {
        if st.ready.remove(task.0) {
            let rank = st.alg.queue_rank(&st.tasks[task.index()]);
            st.ready.insert(task.0, rank);
        }
    }

    /// The most urgent ready task under the current algorithm: the indexed
    /// structure's unique rank-minimal entry (`&mut` because the peek
    /// sweeps lazily deleted entries).
    fn select(&self, st: &mut OsState) -> Option<TaskId> {
        st.ready.peek().map(TaskId)
    }

    /// Appends `task` to `event`'s intrusive waiter list (tail insert:
    /// notify order is registration order, as with the old `Vec` push).
    fn enqueue_waiter(&self, st: &mut OsState, event: RtosEvent, task: TaskId) {
        debug_assert!(
            st.tasks[task.index()].waiting_on.is_none(),
            "{task} is already waiting on an event"
        );
        let prev_tail = st.events[event.index()].tail.replace(task);
        match prev_tail {
            Some(prev) => st.tasks[prev.index()].wait_next = Some(task),
            None => st.events[event.index()].head = Some(task),
        }
        let tcb = &mut st.tasks[task.index()];
        tcb.wait_prev = prev_tail;
        tcb.wait_next = None;
        tcb.waiting_on = Some(event.0);
    }

    /// Unlinks `task` from whatever event queue it is waiting on, if any
    /// (kill and timeout withdrawal paths). O(1).
    fn unlink_waiter(&self, st: &mut OsState, task: TaskId) {
        let tcb = &mut st.tasks[task.index()];
        let Some(ev) = tcb.waiting_on.take() else {
            return;
        };
        let prev = tcb.wait_prev.take();
        let next = tcb.wait_next.take();
        match prev {
            Some(p) => st.tasks[p.index()].wait_next = next,
            None => st.events[ev as usize].head = next,
        }
        match next {
            Some(n) => st.tasks[n.index()].wait_prev = prev,
            None => st.events[ev as usize].tail = prev,
        }
    }

    /// Empties `event`'s waiter list into `out`, head (oldest) first.
    fn drain_waiters(&self, st: &mut OsState, event: RtosEvent, out: &mut Vec<TaskId>) {
        let mut cur = st.events[event.index()].head.take();
        st.events[event.index()].tail = None;
        while let Some(t) = cur {
            let tcb = &mut st.tasks[t.index()];
            cur = tcb.wait_next.take();
            tcb.wait_prev = None;
            tcb.waiting_on = None;
            out.push(t);
        }
    }

    /// Dispatches the most urgent ready task, if the CPU is idle.
    fn dispatch_if_idle(&self, st: &mut OsState, ctx: &ProcCtx) {
        if st.running.is_none() {
            self.dispatch_best(st, ctx);
        }
    }

    /// Dispatches the most urgent ready task (CPU must be idle). If no
    /// task is ready, a pending vacate decision is still recorded (the
    /// trace shows the CPU going idle and why).
    fn dispatch_best(&self, st: &mut OsState, ctx: &ProcCtx) {
        debug_assert!(st.running.is_none());
        if let Some(next) = self.select(st) {
            self.dispatch(st, next, ctx);
        } else if let Some((displaced, reason)) = st.pending_decision.take() {
            if let Some((_, displaced_label, _)) = task_trace_ids(st, displaced) {
                let tr = st.trace.as_ref().expect("trace present");
                tr.handle.sched_decision(
                    ctx.now(),
                    tr.sched_track,
                    None,
                    Some(displaced_label),
                    reason,
                );
            }
        }
    }

    /// Scheduler conformance oracle, run at every dispatch when enabled via
    /// [`set_conformance_checks`](Rtos::set_conformance_checks). Each breach
    /// is a real scheduler bug (or chaos-exposed corruption), never a model
    /// misuse, so it surfaces as an `InvariantViolation` naming the task.
    fn check_dispatch_conformance(&self, st: &OsState, task: TaskId, ctx: &ProcCtx) {
        let tcb = &st.tasks[task.index()];
        let subject = format!("task `{}` on {}", tcb.name, self.inner.name);
        if let Some(run) = st.running {
            ctx.invariant_violation(
                "scheduler-conformance",
                subject,
                format!(
                    "dispatched while `{}` is still running (two running tasks on one PE)",
                    st.tasks[run.index()].name
                ),
            );
        }
        if tcb.state != TaskState::Ready || !st.ready.contains(task.0) {
            ctx.invariant_violation(
                "scheduler-conformance",
                subject,
                format!(
                    "dispatched from state {:?} (in ready queue: {}) — only Ready tasks may run",
                    tcb.state,
                    st.ready.contains(task.0)
                ),
            );
        }
        // Independent cross-check of the indexed pick: a deliberate linear
        // scan re-ranking every queued task with `SchedAlg::rank` (not the
        // structure's own `queue_rank` keys).
        let rank = st.alg.rank(tcb);
        for other in st.ready.iter_live().map(TaskId) {
            let o = &st.tasks[other.index()];
            if st.alg.rank(o) < rank {
                ctx.invariant_violation(
                    "scheduler-conformance",
                    subject,
                    format!(
                        "ready task `{}` outranks the pick under {:?} — ready-queue priority \
                         order violated",
                        o.name, st.alg
                    ),
                );
            }
        }
    }

    fn dispatch(&self, st: &mut OsState, task: TaskId, ctx: &ProcCtx) {
        let now = ctx.now();
        if st.conformance {
            self.check_dispatch_conformance(st, task, ctx);
        }
        st.ready.remove(task.0);
        let tcb = &mut st.tasks[task.index()];
        tcb.state = TaskState::Running;
        tcb.dispatched_at = Some(now);
        tcb.quantum_used = Duration::ZERO;
        if let Some(since) = tcb.ready_since.take() {
            st.stats[task.index()].dispatch_latencies.push(now - since);
        }
        st.stats[task.index()].dispatches += 1;
        let decision = st.pending_decision.take();
        let switched = st.last_dispatched.is_some_and(|last| last != task);
        if switched {
            st.context_switches += 1;
            st.tasks[task.index()].pending_overhead = st.switch_cost;
        }
        if st.trace.is_some() {
            let dispatched_ids = task_trace_ids(st, task).expect("trace present");
            let displaced_label = decision
                .and_then(|(d, _)| task_trace_ids(st, d))
                .map(|ids| ids.1);
            let reason = decision.map_or(DecisionReason::Activation, |(_, r)| r);
            let tr = st.trace.as_ref().expect("trace present");
            tr.handle.sched_decision(
                now,
                tr.sched_track,
                Some(dispatched_ids.1),
                displaced_label,
                reason,
            );
            if switched {
                tr.handle.marker(now, tr.switch_track, dispatched_ids.2);
            }
        }
        st.last_dispatched = Some(task);
        st.running = Some(task);
        let ev = st.tasks[task.index()].dispatch_ev;
        ctx.notify(ev);
    }

    /// Consumes any pending kernel-overhead delay assigned at dispatch.
    fn consume_switch_overhead(&self, ctx: &ProcCtx, task: TaskId) {
        let overhead = {
            let mut st = self.inner.state.lock();
            std::mem::take(&mut st.tasks[task.index()].pending_overhead)
        };
        if !overhead.is_zero() {
            ctx.waitfor(overhead);
        }
    }

    /// Removes `task` from the CPU, accounting its busy time. `reason`
    /// explains why the task is leaving; it is stored and emitted as a
    /// scheduler decision record by the next dispatch (or by
    /// [`dispatch_best`](Rtos::dispatch_best) when the CPU goes idle).
    fn undispatch(&self, st: &mut OsState, task: TaskId, now: SimTime, reason: DecisionReason) {
        debug_assert_eq!(st.running, Some(task));
        st.running = None;
        st.pending_decision = Some((task, reason));
        let tcb = &mut st.tasks[task.index()];
        if let Some(at) = tcb.dispatched_at.take() {
            let busy = now - at;
            st.cpu_busy += busy;
            st.stats[task.index()].busy += busy;
        }
        if matches!(
            reason,
            DecisionReason::Preemption | DecisionReason::TimesliceExpiry
        ) {
            st.stats[task.index()].preemptions += 1;
        }
    }

    /// Blocks the calling process until the scheduler dispatches `task`,
    /// then consumes any modeled context-switch overhead.
    fn wait_until_dispatched(&self, ctx: &ProcCtx, task: TaskId) {
        loop {
            {
                let st = self.inner.state.lock();
                if st.running == Some(task) {
                    break;
                }
            }
            let ev = {
                let st = self.inner.state.lock();
                st.tasks[task.index()].dispatch_ev
            };
            ctx.wait(ev);
        }
        self.consume_switch_overhead(ctx, task);
    }

    /// Scheduler invocation at a delay-step boundary or notify-type call of
    /// the running task: under a preemptive algorithm a more urgent ready
    /// task takes the CPU; under round-robin an exhausted quantum rotates
    /// the caller to the queue tail (only if `allow_rotation`).
    fn preempt_point(&self, ctx: &ProcCtx, allow_rotation: bool) {
        let tid = {
            let mut st = self.inner.state.lock();
            let tid = match st.by_pid.get(&ctx.pid()).copied() {
                Some(t) if st.running == Some(t) => t,
                // Not a task (ISR) or not running: nothing to preempt.
                _ => return,
            };
            let now = ctx.now();
            let switch = if st.alg.is_preemptive() {
                match self.select(&mut st) {
                    Some(best)
                        if st.alg.rank(&st.tasks[best.index()])
                            < st.alg.rank(&st.tasks[tid.index()]) =>
                    {
                        Some(DecisionReason::Preemption)
                    }
                    _ => None,
                }
            } else if let Some(q) = st.alg.quantum() {
                if allow_rotation && st.tasks[tid.index()].quantum_used >= q && !st.ready.is_empty()
                {
                    Some(DecisionReason::TimesliceExpiry)
                } else {
                    None
                }
            } else {
                None
            };
            let Some(reason) = switch else {
                return;
            };
            self.undispatch(&mut st, tid, now, reason);
            // Round-robin rotation goes to the tail (fresh seq); a
            // preempted task keeps its queue position.
            let keep_seq = st.alg.quantum().is_none();
            self.make_ready(&mut st, tid, now, keep_seq);
            self.dispatch_best(&mut st, ctx);
            tid
        };
        self.wait_until_dispatched(ctx, tid);
    }

    /// Records a mutex wait-for edge (`task` blocked behind `owner`) if a
    /// trace is attached. Contributed by [`RtosMutex`](crate::RtosMutex).
    pub(crate) fn trace_mutex_wait(&self, now: SimTime, task: TaskId, owner: TaskId, mutex: u32) {
        let mut st = self.inner.state.lock();
        if st.trace.is_none() {
            return;
        }
        let Some((_, task_label, _)) = task_trace_ids(&mut st, task) else {
            return;
        };
        let Some((_, owner_label, _)) = task_trace_ids(&mut st, owner) else {
            return;
        };
        let tr = st.trace.as_ref().expect("trace present");
        tr.handle.emit(
            now,
            CompactKind::MutexWait {
                track: tr.mutex_track,
                task: task_label,
                owner: owner_label,
                mutex,
            },
        );
    }

    /// Records a mutex acquisition (outermost only) if a trace is attached.
    pub(crate) fn trace_mutex_acquired(&self, now: SimTime, task: TaskId, mutex: u32) {
        let mut st = self.inner.state.lock();
        if st.trace.is_none() {
            return;
        }
        let Some((_, task_label, _)) = task_trace_ids(&mut st, task) else {
            return;
        };
        let tr = st.trace.as_ref().expect("trace present");
        tr.handle.emit(
            now,
            CompactKind::MutexAcquired {
                track: tr.mutex_track,
                task: task_label,
                mutex,
            },
        );
    }

    /// Records a full mutex release (depth reached zero) if a trace is
    /// attached.
    pub(crate) fn trace_mutex_released(&self, now: SimTime, task: TaskId, mutex: u32) {
        let mut st = self.inner.state.lock();
        if st.trace.is_none() {
            return;
        }
        let Some((_, task_label, _)) = task_trace_ids(&mut st, task) else {
            return;
        };
        let tr = st.trace.as_ref().expect("trace present");
        tr.handle.emit(
            now,
            CompactKind::MutexReleased {
                track: tr.mutex_track,
                task: task_label,
                mutex,
            },
        );
    }

    /// Records a new task release (the start of an activation in the
    /// response-time sense) if a trace is attached: first activation and
    /// each periodic re-release, but never preemption/wakeup requeues.
    /// `release` is the nominal release time, which may differ from `now`
    /// (future for a task sleeping until its next period, past for an
    /// overrun cycle released retroactively).
    fn trace_task_released(&self, st: &mut OsState, now: SimTime, task: TaskId, release: SimTime) {
        if st.trace.is_none() {
            return;
        }
        let Some((task_track, task_label, _)) = task_trace_ids(st, task) else {
            return;
        };
        let tr = st.trace.as_ref().expect("trace present");
        tr.handle.emit(
            now,
            CompactKind::TaskReleased {
                track: task_track,
                task: task_label,
                release,
            },
        );
    }

    fn span_begin(&self, ctx: &ProcCtx, label: &str) {
        let mut st = self.inner.state.lock();
        if st.trace.is_none() {
            return;
        }
        let Some(&tid) = st.by_pid.get(&ctx.pid()) else {
            return;
        };
        let Some((track, _, _)) = task_trace_ids(&mut st, tid) else {
            return;
        };
        if let Some(tr) = &st.trace {
            tr.handle.span_begin_dyn(ctx.now(), track, label);
        }
    }

    fn span_end(&self, ctx: &ProcCtx) {
        let mut st = self.inner.state.lock();
        if st.trace.is_none() {
            return;
        }
        let Some(&tid) = st.by_pid.get(&ctx.pid()) else {
            return;
        };
        let Some((track, _, _)) = task_trace_ids(&mut st, tid) else {
            return;
        };
        if let Some(tr) = &st.trace {
            tr.handle.span_end(ctx.now(), track);
        }
    }
}

/// RTOS events implement the channel synchronization interface, so the SLDL
/// channel library ([`sldl_sim::channel`]) runs unmodified on top of the
/// RTOS model — the paper's Figure 7 refinement.
impl SyncLayer for Rtos {
    type Ev = RtosEvent;

    fn ev_new(&self) -> RtosEvent {
        self.event_new()
    }

    fn ev_wait(&self, ctx: &ProcCtx, e: RtosEvent) {
        self.event_wait(ctx, e);
    }

    fn ev_notify(&self, ctx: &ProcCtx, e: RtosEvent) {
        self.event_notify(ctx, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtos_event_display() {
        assert_eq!(RtosEvent(2).to_string(), "rtos-evt2");
        assert_eq!(RtosEvent(2).index(), 2);
    }

    #[test]
    fn default_time_slice_is_whole_delay() {
        assert_eq!(TimeSlice::default(), TimeSlice::WholeDelay);
    }

    #[test]
    fn rtos_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Rtos>();
    }
}
