//! RTOS-level mutual exclusion with optional priority inheritance.
//!
//! The paper's RTOS model covers "task synchronization" through events; a
//! real RTOS also ships a mutex, and the classic hazard it guards against —
//! *priority inversion* — is exactly the kind of dynamic behavior the
//! abstract model exists to expose early. [`RtosMutex`] provides
//! `lock`/`unlock` built on RTOS events, with the [basic priority
//! inheritance protocol][pip]: while a more urgent task is blocked on the
//! mutex, the owner runs at the blocked task's priority, bounding the
//! inversion to the length of the critical section.
//!
//! [pip]: https://en.wikipedia.org/wiki/Priority_inheritance

use std::sync::Arc;
use std::time::Duration;

use sldl_sim::sync::Mutex as HostMutex;
use sldl_sim::ProcCtx;

use crate::rtos::{Rtos, RtosEvent};
use crate::task::TaskId;

/// Whether a mutex applies the priority-inheritance protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InheritancePolicy {
    /// Owners inherit the priority of their most urgent waiter.
    #[default]
    Inherit,
    /// Plain blocking mutex: priority inversion is possible.
    None,
}

/// Failure modes of [`RtosMutex::lock_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutexError {
    /// The calling task already owns the mutex. `lock_timeout` treats the
    /// mutex as non-recursive — re-acquiring would self-deadlock a task
    /// that forgot it holds the lock, so the hazard is reported as an
    /// error instead of blocking forever.
    AlreadyOwned,
    /// The timeout elapsed before the mutex became free.
    Timeout,
}

impl core::fmt::Display for MutexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MutexError::AlreadyOwned => write!(f, "mutex already owned by the calling task"),
            MutexError::Timeout => write!(f, "mutex acquisition timed out"),
        }
    }
}

impl std::error::Error for MutexError {}

#[derive(Debug)]
struct MutexState {
    owner: Option<TaskId>,
    /// Tasks currently blocked in `lock`.
    waiters: Vec<TaskId>,
    /// Recursion guard: depth of nested locks by the owner.
    depth: u32,
}

/// A mutual-exclusion lock for RTOS tasks, with optional priority
/// inheritance. Clonable; all clones share the same lock.
///
/// ```
/// use rtos_model::{InheritancePolicy, Priority, Rtos, RtosMutex, SchedAlg, TaskParams};
/// use sldl_sim::{Child, Simulation};
/// use std::time::Duration;
///
/// let mut sim = Simulation::new();
/// let os = Rtos::new("pe", sim.sync_layer());
/// os.start(SchedAlg::PriorityPreemptive);
/// let m = RtosMutex::new(os.clone(), InheritancePolicy::Inherit);
///
/// let os2 = os.clone();
/// sim.spawn(Child::new("t", move |ctx| {
///     let me = os2.task_create(&TaskParams::aperiodic("t", Priority(1)));
///     os2.task_activate(ctx, me);
///     m.lock(ctx);
///     os2.time_wait(ctx, Duration::from_micros(10));
///     m.unlock(ctx);
///     os2.task_terminate(ctx);
/// }));
/// sim.run().unwrap();
/// ```
pub struct RtosMutex {
    os: Rtos,
    name: Arc<String>,
    policy: InheritancePolicy,
    freed: RtosEvent,
    state: Arc<HostMutex<MutexState>>,
}

impl Clone for RtosMutex {
    fn clone(&self) -> Self {
        RtosMutex {
            os: self.os.clone(),
            name: Arc::clone(&self.name),
            policy: self.policy,
            freed: self.freed,
            state: Arc::clone(&self.state),
        }
    }
}

impl core::fmt::Debug for RtosMutex {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("RtosMutex")
            .field("name", &*self.name)
            .field("owner", &st.owner)
            .field("waiters", &st.waiters.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl RtosMutex {
    /// Creates a mutex on the given RTOS instance with a generated name.
    #[must_use]
    pub fn new(os: Rtos, policy: InheritancePolicy) -> Self {
        let freed = os.event_new();
        let name = format!("mutex{}", freed.index());
        Self::build(os, policy, freed, name)
    }

    /// Creates a mutex named `name` — the resource name reported in the
    /// kernel's wait-for graph and in
    /// [`RunError::Deadlock`](sldl_sim::RunError::Deadlock) cycles.
    #[must_use]
    pub fn named(os: Rtos, policy: InheritancePolicy, name: impl Into<String>) -> Self {
        let freed = os.event_new();
        Self::build(os, policy, freed, name.into())
    }

    fn build(os: Rtos, policy: InheritancePolicy, freed: RtosEvent, name: String) -> Self {
        RtosMutex {
            os,
            name: Arc::new(name),
            policy,
            freed,
            state: Arc::new(HostMutex::new(MutexState {
                owner: None,
                waiters: Vec::new(),
                depth: 0,
            })),
        }
    }

    /// The mutex's resource name (used in deadlock reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stable trace id of this mutex (its RTOS event index) — the `mutex`
    /// field of the `"{pe}:mutex"` trace records.
    fn trace_id(&self) -> u32 {
        u32::try_from(self.freed.index()).unwrap_or(u32::MAX)
    }

    /// Declares the kernel wait-for edge `me --[this mutex]--> owner` so
    /// the stall checker can name lock cycles.
    fn declare_edge(&self, me: TaskId, owner: TaskId) {
        self.os.sync_layer().declare_wait(
            self.os.task_name(me),
            (*self.name).clone(),
            self.os.task_name(owner),
        );
    }

    fn clear_edge(&self, me: TaskId) {
        self.os.sync_layer().clear_wait(&self.os.task_name(me));
    }

    /// Acquires the mutex, blocking the calling task while another task
    /// owns it. Recursive locking by the owner is allowed (unlock once per
    /// lock).
    ///
    /// # Panics
    ///
    /// Panics if the caller is not a running RTOS task.
    pub fn lock(&self, ctx: &ProcCtx) {
        let me = self
            .os
            .current_task(ctx)
            .expect("mutex lock from a non-task process");
        loop {
            {
                let mut st = self.state.lock();
                match st.owner {
                    None => {
                        st.owner = Some(me);
                        st.depth = 1;
                        drop(st);
                        self.os.trace_mutex_acquired(ctx.now(), me, self.trace_id());
                        return;
                    }
                    Some(owner) if owner == me => {
                        st.depth += 1;
                        return;
                    }
                    Some(owner) => {
                        st.waiters.push(me);
                        drop(st);
                        self.declare_edge(me, owner);
                        if self.policy == InheritancePolicy::Inherit {
                            // The owner inherits our (current) priority.
                            self.inherit(owner, me);
                        }
                        self.os
                            .trace_mutex_wait(ctx.now(), me, owner, self.trace_id());
                    }
                }
            }
            // Block until the owner releases, then re-contend.
            self.os.event_wait(ctx, self.freed);
            self.clear_edge(me);
            let mut st = self.state.lock();
            st.waiters.retain(|&t| t != me);
        }
    }

    /// Like [`lock`](RtosMutex::lock) with an upper bound on the blocking
    /// time, treating the mutex as **non-recursive**:
    ///
    /// * `Err(`[`MutexError::AlreadyOwned`]`)` if the calling task already
    ///   holds the mutex (the self-deadlock hazard, reported instead of
    ///   blocking forever);
    /// * `Err(`[`MutexError::Timeout`]`)` if `timeout` simulated time
    ///   elapses before the mutex becomes free;
    /// * `Ok(())` once acquired (release with
    ///   [`unlock`](RtosMutex::unlock) as usual).
    ///
    /// # Panics
    ///
    /// Panics if the caller is not a running RTOS task.
    pub fn lock_timeout(&self, ctx: &ProcCtx, timeout: Duration) -> Result<(), MutexError> {
        let me = self
            .os
            .current_task(ctx)
            .expect("mutex lock_timeout from a non-task process");
        let deadline = ctx.now() + timeout;
        loop {
            let owner = {
                let mut st = self.state.lock();
                match st.owner {
                    None => {
                        st.owner = Some(me);
                        st.depth = 1;
                        drop(st);
                        self.os.trace_mutex_acquired(ctx.now(), me, self.trace_id());
                        return Ok(());
                    }
                    Some(owner) if owner == me => return Err(MutexError::AlreadyOwned),
                    Some(owner) => owner,
                }
            };
            let now = ctx.now();
            if now >= deadline {
                return Err(MutexError::Timeout);
            }
            self.state.lock().waiters.push(me);
            self.declare_edge(me, owner);
            if self.policy == InheritancePolicy::Inherit {
                self.inherit(owner, me);
            }
            self.os.trace_mutex_wait(now, me, owner, self.trace_id());
            let fired = self.os.event_wait_timeout(ctx, self.freed, deadline - now);
            self.clear_edge(me);
            self.state.lock().waiters.retain(|&t| t != me);
            if !fired {
                return Err(MutexError::Timeout);
            }
        }
    }

    /// Applies priority inheritance: `owner` runs at least as urgently as
    /// `waiter`.
    fn inherit(&self, owner: TaskId, waiter: TaskId) {
        let waiter_prio = self.os.task_priority(waiter);
        self.os.boost_priority(owner, waiter_prio);
    }

    /// Releases the mutex, restoring the caller's base priority and waking
    /// all waiters to re-contend (the most urgent wins the CPU).
    ///
    /// # Panics
    ///
    /// Panics if the caller does not own the mutex.
    pub fn unlock(&self, ctx: &ProcCtx) {
        let me = self
            .os
            .current_task(ctx)
            .expect("mutex unlock from a non-task process");
        let fully_released = {
            let mut st = self.state.lock();
            assert_eq!(st.owner, Some(me), "unlock by non-owner task");
            st.depth -= 1;
            if st.depth == 0 {
                st.owner = None;
                true
            } else {
                false
            }
        };
        if fully_released {
            self.os.trace_mutex_released(ctx.now(), me, self.trace_id());
            if self.policy == InheritancePolicy::Inherit {
                self.os.restore_priority(me);
            }
            // Wake every waiter; they re-contend, the scheduler picks the
            // most urgent, and the unlocking task passes through the
            // notify preemption point.
            self.os.event_notify(ctx, self.freed);
        }
    }

    /// Tries to acquire without blocking; `true` on success.
    ///
    /// # Panics
    ///
    /// Panics if the caller is not a running RTOS task.
    pub fn try_lock(&self, ctx: &ProcCtx) -> bool {
        let me = self
            .os
            .current_task(ctx)
            .expect("mutex try_lock from a non-task process");
        let mut st = self.state.lock();
        match st.owner {
            None => {
                st.owner = Some(me);
                st.depth = 1;
                drop(st);
                self.os.trace_mutex_acquired(ctx.now(), me, self.trace_id());
                true
            }
            Some(owner) if owner == me => {
                st.depth += 1;
                true
            }
            Some(_) => false,
        }
    }
}
