//! Scheduling algorithms of the RTOS model.
//!
//! The paper's `start(int sched_alg)` selects a dynamic scheduling strategy
//! per processing element. The model "supports both periodic hard real time
//! tasks with a critical deadline and non-periodic real time tasks with a
//! fixed priority"; we provide the classic algorithms from Buttazzo's *Hard
//! Real-Time Computing Systems* (the paper's reference [5]).

use core::fmt;
use std::time::Duration;

use crate::task::{TaskKind, Tcb};

/// Dynamic scheduling algorithm run by an [`Rtos`](crate::Rtos) instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedAlg {
    /// Fixed-priority, preemptive (the paper's default for its examples):
    /// the most urgent ready task always gets the CPU; an awakened
    /// higher-priority task preempts the running one at its next RTOS call
    /// or delay-step boundary.
    PriorityPreemptive,
    /// Fixed-priority, cooperative: a running task keeps the CPU until it
    /// blocks, sleeps, or terminates.
    PriorityCooperative,
    /// First-come-first-served, non-preemptive.
    Fifo,
    /// Round-robin among ready tasks with a time quantum, evaluated at
    /// delay-step boundaries (`time_wait`).
    RoundRobin {
        /// Maximum CPU time before the task is rotated to the queue tail.
        quantum: Duration,
    },
    /// Rate-monotonic: periodic tasks ranked by period (shorter period is
    /// more urgent), preemptive. Aperiodic tasks run in the background,
    /// ranked by their static priority.
    Rms,
    /// Earliest-deadline-first: tasks ranked by current absolute deadline,
    /// preemptive. Tasks without a deadline run in the background, ranked
    /// by static priority.
    Edf,
}

impl SchedAlg {
    /// Whether a newly ready task may take the CPU from a running task
    /// (always at RTOS-call / delay-step granularity, per the paper).
    #[must_use]
    pub fn is_preemptive(self) -> bool {
        matches!(
            self,
            SchedAlg::PriorityPreemptive | SchedAlg::Rms | SchedAlg::Edf
        )
    }

    /// The round-robin quantum, if this algorithm has one.
    #[must_use]
    pub fn quantum(self) -> Option<Duration> {
        match self {
            SchedAlg::RoundRobin { quantum } => Some(quantum),
            _ => None,
        }
    }

    /// Ranking key for a ready task: the scheduler dispatches the ready
    /// task with the smallest key. Keys are compared lexicographically.
    /// This is also the ground truth the scheduler conformance oracle
    /// ([`Rtos::set_conformance_checks`](crate::Rtos::set_conformance_checks))
    /// re-evaluates at every dispatch: the picked task must be rank-minimal
    /// over the ready queue.
    pub(crate) fn rank(self, tcb: &Tcb) -> (u64, u64, u64) {
        match self {
            SchedAlg::PriorityPreemptive | SchedAlg::PriorityCooperative => {
                (u64::from(tcb.priority.0), tcb.ready_seq, 0)
            }
            SchedAlg::Fifo | SchedAlg::RoundRobin { .. } => (tcb.ready_seq, 0, 0),
            SchedAlg::Rms => match tcb.kind {
                // Periodic tasks rank above (before) all aperiodic tasks.
                TaskKind::Periodic { period } => (0, period.as_nanos() as u64, tcb.ready_seq),
                TaskKind::Aperiodic => (1, u64::from(tcb.priority.0), tcb.ready_seq),
            },
            SchedAlg::Edf => (
                tcb.abs_deadline.as_nanos(),
                u64::from(tcb.priority.0),
                tcb.ready_seq,
            ),
        }
    }

    /// Key under which the indexed ready structure
    /// ([`ReadyQueue`](crate::readyq::ReadyQueue)) stores a task: a
    /// normalized `(level_hi, level_lo, seq)` triple that orders identically
    /// to [`rank`](Self::rank) — `queue_rank(a) < queue_rank(b)` iff
    /// `rank(a) < rank(b)` — but always carries the FIFO sequence number in
    /// the last position, so the first two components form a stable
    /// per-level key and in-level order is pure arrival order. `ready_seq`
    /// values are globally unique (the counter only ever grows and a
    /// requeue reuses the task's own number), so no two queued tasks ever
    /// compare equal and the structure's unique minimum *is* the linear
    /// scan's first-minimal pick.
    pub(crate) fn queue_rank(self, tcb: &Tcb) -> (u64, u64, u64) {
        match self {
            SchedAlg::PriorityPreemptive | SchedAlg::PriorityCooperative => {
                (u64::from(tcb.priority.0), 0, tcb.ready_seq)
            }
            SchedAlg::Fifo | SchedAlg::RoundRobin { .. } => (0, 0, tcb.ready_seq),
            // RMS and EDF ranks already carry the seq last.
            SchedAlg::Rms | SchedAlg::Edf => self.rank(tcb),
        }
    }
}

impl fmt::Display for SchedAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedAlg::PriorityPreemptive => f.write_str("priority-preemptive"),
            SchedAlg::PriorityCooperative => f.write_str("priority-cooperative"),
            SchedAlg::Fifo => f.write_str("fifo"),
            SchedAlg::RoundRobin { quantum } => {
                write!(f, "round-robin({}us)", quantum.as_micros())
            }
            SchedAlg::Rms => f.write_str("rate-monotonic"),
            SchedAlg::Edf => f.write_str("edf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Priority, TaskState};
    use sldl_sim::SimTime;

    fn tcb(priority: u32, kind: TaskKind, ready_seq: u64, deadline_us: u64) -> Tcb {
        Tcb {
            name: "t".into(),
            kind,
            priority: Priority(priority),
            base_priority: Priority(priority),
            wcet: Duration::ZERO,
            deadline: None,
            state: TaskState::Ready,
            dispatch_ev: {
                // Fabricate an event id through a scratch simulation.
                let mut sim = sldl_sim::Simulation::new();
                sim.event_new()
            },
            pid: None,
            ready_seq,
            release_time: SimTime::ZERO,
            abs_deadline: SimTime::from_micros(deadline_us),
            ready_since: None,
            dispatched_at: None,
            quantum_used: Duration::ZERO,
            pending_overhead: Duration::ZERO,
            last_cpu_end: SimTime::ZERO,
            miss_policy: crate::task::MissPolicy::Count,
            miss_budget: 1,
            consecutive_misses: 0,
            wait_next: None,
            wait_prev: None,
            waiting_on: None,
        }
    }

    #[test]
    fn priority_rank_prefers_lower_priority_value() {
        let alg = SchedAlg::PriorityPreemptive;
        let hi = tcb(1, TaskKind::Aperiodic, 10, 0);
        let lo = tcb(5, TaskKind::Aperiodic, 1, 0);
        assert!(alg.rank(&hi) < alg.rank(&lo));
    }

    #[test]
    fn priority_ties_break_fifo() {
        let alg = SchedAlg::PriorityPreemptive;
        let first = tcb(3, TaskKind::Aperiodic, 1, 0);
        let second = tcb(3, TaskKind::Aperiodic, 2, 0);
        assert!(alg.rank(&first) < alg.rank(&second));
    }

    #[test]
    fn fifo_ranks_by_arrival() {
        let alg = SchedAlg::Fifo;
        let first = tcb(9, TaskKind::Aperiodic, 1, 0);
        let second = tcb(0, TaskKind::Aperiodic, 2, 0);
        assert!(alg.rank(&first) < alg.rank(&second));
    }

    #[test]
    fn rms_prefers_shorter_period_and_periodic_over_aperiodic() {
        let alg = SchedAlg::Rms;
        let fast = tcb(
            9,
            TaskKind::Periodic {
                period: Duration::from_millis(5),
            },
            7,
            0,
        );
        let slow = tcb(
            0,
            TaskKind::Periodic {
                period: Duration::from_millis(50),
            },
            1,
            0,
        );
        let background = tcb(0, TaskKind::Aperiodic, 0, 0);
        assert!(alg.rank(&fast) < alg.rank(&slow));
        assert!(alg.rank(&slow) < alg.rank(&background));
    }

    #[test]
    fn edf_prefers_earlier_deadline() {
        let alg = SchedAlg::Edf;
        let soon = tcb(9, TaskKind::Aperiodic, 9, 100);
        let later = tcb(0, TaskKind::Aperiodic, 0, 500);
        assert!(alg.rank(&soon) < alg.rank(&later));
    }

    #[test]
    fn preemptiveness_classification() {
        assert!(SchedAlg::PriorityPreemptive.is_preemptive());
        assert!(SchedAlg::Rms.is_preemptive());
        assert!(SchedAlg::Edf.is_preemptive());
        assert!(!SchedAlg::Fifo.is_preemptive());
        assert!(!SchedAlg::PriorityCooperative.is_preemptive());
        assert!(!SchedAlg::RoundRobin {
            quantum: Duration::from_millis(1)
        }
        .is_preemptive());
    }

    #[test]
    fn quantum_accessor() {
        assert_eq!(
            SchedAlg::RoundRobin {
                quantum: Duration::from_micros(250)
            }
            .quantum(),
            Some(Duration::from_micros(250))
        );
        assert_eq!(SchedAlg::Edf.quantum(), None);
    }

    #[test]
    fn queue_rank_orders_exactly_like_rank() {
        // The indexed ready structure sorts by queue_rank; the conformance
        // oracle re-checks picks with rank. The two must agree on every
        // pair, for every algorithm.
        let tcbs = [
            tcb(0, TaskKind::Aperiodic, 3, 700),
            tcb(2, TaskKind::Aperiodic, 1, 100),
            tcb(
                2,
                TaskKind::Periodic {
                    period: Duration::from_millis(5),
                },
                2,
                250,
            ),
            tcb(
                7,
                TaskKind::Periodic {
                    period: Duration::from_millis(50),
                },
                4,
                250,
            ),
            tcb(7, TaskKind::Aperiodic, 5, 100),
        ];
        let algs = [
            SchedAlg::PriorityPreemptive,
            SchedAlg::PriorityCooperative,
            SchedAlg::Fifo,
            SchedAlg::RoundRobin {
                quantum: Duration::from_millis(1),
            },
            SchedAlg::Rms,
            SchedAlg::Edf,
        ];
        for alg in algs {
            for a in &tcbs {
                for b in &tcbs {
                    assert_eq!(
                        alg.rank(a).cmp(&alg.rank(b)),
                        alg.queue_rank(a).cmp(&alg.queue_rank(b)),
                        "{alg}: rank and queue_rank disagree"
                    );
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            SchedAlg::PriorityPreemptive.to_string(),
            "priority-preemptive"
        );
        assert_eq!(
            SchedAlg::RoundRobin {
                quantum: Duration::from_micros(100)
            }
            .to_string(),
            "round-robin(100us)"
        );
    }
}
