//! Indexed ready-queue structures for the RTOS scheduler.
//!
//! [`Rtos`](crate::Rtos) used to pick the next task with a linear
//! `min_by_key` scan over a `Vec<TaskId>` and remove tasks with `retain` —
//! O(n) on every dispatch, on the hottest path of the whole model (the
//! paper's speed claim rests on that path being cheap). [`ReadyQueue`]
//! replaces the scan with one of two indexed structures, chosen per
//! scheduling algorithm by [`ReadyQueue::for_alg`]:
//!
//! * **Indexed** (fixed-priority, FIFO, round-robin, RMS): a sorted array
//!   of distinct *level keys* (the first two components of the
//!   [`Rank`]), an occupancy bitmap over the levels, and one FIFO
//!   `VecDeque` per level ordered by the rank's sequence number. Insertion
//!   at the back and the minimum at the front of the lowest occupied level
//!   are O(1) (amortized); a brand-new level key costs one sorted insert,
//!   and priority levels are few and recur.
//! * **Heap** (EDF, whose first key component is a continuously varying
//!   deadline): a lazy-deletion binary min-heap over full ranks.
//!
//! Removal is O(1) in both: each task has a *stamp slot*, and an entry in
//! the structure is live only while its recorded stamp matches the slot.
//! Removing a task zeroes its slot; the stale entry is discarded when it
//! surfaces at a front/top during [`peek`](ReadyQueue::peek). Every entry
//! is cleaned up at most once, so all operations stay amortized O(1) /
//! O(log n).
//!
//! Because ranks never tie (see
//! [`SchedAlg::queue_rank`](crate::SchedAlg)), the structure's minimum is
//! the *unique* rank-minimal task — exactly what the old first-minimal
//! linear scan returned. The scheduler-conformance oracle keeps its own
//! independent linear scan as the cross-check.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::sched::SchedAlg;

/// Normalized scheduling key: `(level_hi, level_lo, seq)`, compared
/// lexicographically, lower is more urgent. The first two components form
/// the priority level; `seq` is the globally unique FIFO sequence number,
/// so two queued ranks are never equal.
pub type Rank = (u64, u64, u64);

/// One queued entry of the indexed variant: `(task, stamp, seq)`.
type Entry = (u32, u64, u64);

/// Per-task liveness slot: an entry in the structure is live iff its stamp
/// matches. Stamp 0 means "not queued".
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    stamp: u64,
    rank: Rank,
}

fn is_live(slots: &[Slot], task: u32, stamp: u64) -> bool {
    slots[task as usize].stamp == stamp
}

/// Priority-bitmap + per-level FIFO structure for algorithms whose level
/// key space is small and recurring (static priorities, RMS periods).
#[derive(Debug, Default)]
struct Indexed {
    /// Sorted distinct level keys `(level_hi, level_lo)`.
    keys: Vec<(u64, u64)>,
    /// Parallel per-level FIFOs, each sorted by seq (stale entries
    /// included — a stale duplicate shares its live twin's seq).
    fifos: Vec<VecDeque<Entry>>,
    /// Occupancy bitmap over level indices: bit i set iff `fifos[i]` is
    /// non-empty (it may still hold only stale entries; `peek` drains
    /// those and clears the bit).
    occ: Vec<u64>,
}

impl Indexed {
    fn set_bit(&mut self, i: usize) {
        self.occ[i / 64] |= 1 << (i % 64);
    }

    fn clear_bit(&mut self, i: usize) {
        self.occ[i / 64] &= !(1 << (i % 64));
    }

    fn lowest_occupied(&self) -> Option<usize> {
        self.occ
            .iter()
            .enumerate()
            .find(|(_, w)| **w != 0)
            .map(|(i, w)| i * 64 + w.trailing_zeros() as usize)
    }

    /// Recomputes the bitmap from deque emptiness — only needed after a
    /// new level key shifts the indices.
    fn rebuild_bits(&mut self) {
        self.occ.clear();
        self.occ.resize(self.keys.len().div_ceil(64), 0);
        for i in 0..self.fifos.len() {
            if !self.fifos[i].is_empty() {
                self.set_bit(i);
            }
        }
    }

    fn insert(&mut self, slots: &[Slot], task: u32, stamp: u64, rank: Rank) {
        let key = (rank.0, rank.1);
        let seq = rank.2;
        let i = match self.keys.binary_search(&key) {
            Ok(i) => i,
            Err(i) => {
                // First sighting of this level: O(levels) once per key.
                self.keys.insert(i, key);
                self.fifos.insert(i, VecDeque::new());
                self.rebuild_bits();
                i
            }
        };
        let fifo = &mut self.fifos[i];
        // Shed stale entries off the back so the common append is O(1).
        while let Some(&(t, s, _)) = fifo.back() {
            if is_live(slots, t, s) {
                break;
            }
            fifo.pop_back();
        }
        match fifo.back() {
            // Fresh arrival: newest seq goes to the back.
            None => fifo.push_back((task, stamp, seq)),
            Some(&(_, _, back_seq)) if back_seq < seq => fifo.push_back((task, stamp, seq)),
            _ => {
                // Requeue of an old seq (preempted task keeping its FIFO
                // position, or a priority re-rank): usually the new front.
                while let Some(&(t, s, _)) = fifo.front() {
                    if is_live(slots, t, s) {
                        break;
                    }
                    fifo.pop_front();
                }
                match fifo.front() {
                    Some(&(_, _, front_seq)) if seq < front_seq => {
                        fifo.push_front((task, stamp, seq));
                    }
                    _ => {
                        // Rare: lands mid-deque. Keep it sorted by seq.
                        let at = fifo.partition_point(|&(_, _, s)| s < seq);
                        fifo.insert(at, (task, stamp, seq));
                    }
                }
            }
        }
        self.set_bit(i);
    }

    fn peek(&mut self, slots: &[Slot]) -> Option<u32> {
        while let Some(i) = self.lowest_occupied() {
            loop {
                match self.fifos[i].front().copied() {
                    None => {
                        self.clear_bit(i);
                        break;
                    }
                    Some((t, s, _)) if is_live(slots, t, s) => return Some(t),
                    Some(_) => {
                        self.fifos[i].pop_front();
                    }
                }
            }
        }
        None
    }
}

#[derive(Debug)]
enum Imp {
    Indexed(Indexed),
    /// Lazy-deletion min-heap over `(rank, task, stamp)`.
    Heap(BinaryHeap<Reverse<(Rank, u32, u64)>>),
}

/// The scheduler's ready queue: O(1)/O(log n) insert, remove, and
/// rank-minimal peek over `u32` task ids, with ranks assigned by the
/// caller (see [`SchedAlg::queue_rank`](crate::SchedAlg)).
///
/// ```
/// use rtos_model::readyq::ReadyQueue;
///
/// let mut q = ReadyQueue::indexed();
/// q.insert(0, (2, 0, 1)); // task 0, priority 2, seq 1
/// q.insert(1, (1, 0, 2)); // task 1, priority 1, seq 2
/// assert_eq!(q.peek(), Some(1)); // lower level wins
/// assert!(q.remove(1));
/// assert_eq!(q.peek(), Some(0));
/// ```
#[derive(Debug)]
pub struct ReadyQueue {
    slots: Vec<Slot>,
    next_stamp: u64,
    live: usize,
    imp: Imp,
}

impl ReadyQueue {
    /// A bitmap-indexed multi-level FIFO queue (fixed-priority / FIFO /
    /// round-robin / RMS ranks, whose level keys are few and recurring).
    #[must_use]
    pub fn indexed() -> Self {
        ReadyQueue {
            slots: Vec::new(),
            next_stamp: 0,
            live: 0,
            imp: Imp::Indexed(Indexed::default()),
        }
    }

    /// A lazy-deletion rank heap (EDF ranks, whose first component is a
    /// continuously varying absolute deadline).
    #[must_use]
    pub fn heap() -> Self {
        ReadyQueue {
            slots: Vec::new(),
            next_stamp: 0,
            live: 0,
            imp: Imp::Heap(BinaryHeap::new()),
        }
    }

    /// The structure suited to `alg`'s rank shape.
    #[must_use]
    pub fn for_alg(alg: SchedAlg) -> Self {
        match alg {
            SchedAlg::Edf => ReadyQueue::heap(),
            _ => ReadyQueue::indexed(),
        }
    }

    /// Number of queued tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no task is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `task` is currently queued.
    #[must_use]
    pub fn contains(&self, task: u32) -> bool {
        self.slots.get(task as usize).is_some_and(|s| s.stamp != 0)
    }

    /// The queued rank of `task`, if it is queued.
    #[must_use]
    pub fn rank_of(&self, task: u32) -> Option<Rank> {
        self.slots
            .get(task as usize)
            .filter(|s| s.stamp != 0)
            .map(|s| s.rank)
    }

    /// Inserts `task` with `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is already queued (re-rank by removing first).
    pub fn insert(&mut self, task: u32, rank: Rank) {
        let idx = task as usize;
        if self.slots.len() <= idx {
            self.slots.resize(idx + 1, Slot::default());
        }
        assert_eq!(self.slots[idx].stamp, 0, "task {task} is already queued");
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        self.slots[idx] = Slot { stamp, rank };
        self.live += 1;
        match &mut self.imp {
            Imp::Indexed(ix) => ix.insert(&self.slots, task, stamp, rank),
            Imp::Heap(h) => h.push(Reverse((rank, task, stamp))),
        }
    }

    /// Removes `task` in O(1) (lazy: the structural entry is discarded
    /// when it later surfaces during a [`peek`](ReadyQueue::peek)).
    /// Returns whether the task was queued.
    pub fn remove(&mut self, task: u32) -> bool {
        match self.slots.get_mut(task as usize) {
            Some(slot) if slot.stamp != 0 => {
                slot.stamp = 0;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// The rank-minimal queued task, without removing it. Takes `&mut
    /// self` because stale entries encountered on the way are discarded.
    pub fn peek(&mut self) -> Option<u32> {
        if self.live == 0 {
            return None;
        }
        let ReadyQueue { slots, imp, .. } = self;
        match imp {
            Imp::Indexed(ix) => ix.peek(slots),
            Imp::Heap(h) => loop {
                let &Reverse((_, t, s)) = h.peek()?;
                if is_live(slots, t, s) {
                    return Some(t);
                }
                h.pop();
            },
        }
    }

    /// Removes and returns the rank-minimal queued task.
    pub fn pop(&mut self) -> Option<u32> {
        let t = self.peek()?;
        self.remove(t);
        Some(t)
    }

    /// Queued task ids, in unspecified order (used by the conformance
    /// oracle's independent cross-check and by algorithm switches).
    pub fn iter_live(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.stamp != 0)
            .map(|(i, _)| i as u32)
    }

    /// Removes every queued task (capacity is retained).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.live = 0;
        match &mut self.imp {
            Imp::Indexed(ix) => {
                ix.keys.clear();
                ix.fifos.clear();
                ix.occ.clear();
            }
            Imp::Heap(h) => h.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_level_and_level_order() {
        let mut q = ReadyQueue::indexed();
        q.insert(3, (1, 0, 10));
        q.insert(5, (1, 0, 11));
        q.insert(7, (0, 0, 12)); // more urgent level, later arrival
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn keep_seq_requeue_regains_front_position() {
        let mut q = ReadyQueue::indexed();
        q.insert(0, (2, 0, 1));
        q.insert(1, (2, 0, 2));
        // Task 0 is dispatched, then preempted and requeued with its old
        // seq: it must come back ahead of task 1.
        assert_eq!(q.pop(), Some(0));
        q.insert(0, (2, 0, 1));
        assert_eq!(q.peek(), Some(0));
    }

    #[test]
    fn lazy_removal_skips_stale_entries() {
        let mut q = ReadyQueue::indexed();
        q.insert(0, (1, 0, 1));
        q.insert(1, (1, 0, 2));
        q.insert(2, (1, 0, 3));
        assert!(q.remove(1));
        assert!(!q.remove(1));
        assert!(!q.contains(1));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn mid_deque_insert_keeps_seq_order() {
        let mut q = ReadyQueue::indexed();
        q.insert(0, (1, 0, 1));
        q.insert(1, (1, 0, 2));
        q.insert(2, (1, 0, 3));
        // Remove the middle task, then requeue it with its old seq while
        // both neighbors are still queued: the general sorted-insert path.
        q.remove(1);
        q.insert(1, (1, 0, 2));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn heap_orders_by_full_rank() {
        let mut q = ReadyQueue::heap();
        q.insert(0, (500, 3, 1));
        q.insert(1, (100, 9, 2));
        q.insert(2, (100, 1, 3));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(0));
    }

    #[test]
    fn heap_rerank_after_remove() {
        let mut q = ReadyQueue::heap();
        q.insert(0, (500, 0, 1));
        q.insert(1, (400, 0, 2));
        assert_eq!(q.peek(), Some(1));
        // Re-rank task 1 to a later deadline: task 0 becomes minimal.
        q.remove(1);
        q.insert(1, (900, 0, 2));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn many_levels_exercise_the_bitmap() {
        let mut q = ReadyQueue::indexed();
        // 130 distinct levels spans three bitmap words.
        for t in 0..130u32 {
            q.insert(t, (u64::from(130 - t), 0, u64::from(t) + 1));
        }
        for t in (0..130u32).rev() {
            assert_eq!(q.pop(), Some(t));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn rank_of_and_clear() {
        let mut q = ReadyQueue::indexed();
        q.insert(4, (2, 0, 9));
        assert_eq!(q.rank_of(4), Some((2, 0, 9)));
        assert_eq!(q.rank_of(0), None);
        q.clear();
        assert!(q.is_empty());
        assert!(!q.contains(4));
        q.insert(4, (1, 0, 10));
        assert_eq!(q.peek(), Some(4));
    }
}
