//! Equivalence property test: the indexed ready structure
//! ([`rtos_model::readyq::ReadyQueue`]) must produce *identical pick
//! sequences* to the reference model it replaced — a linear scan over an
//! insertion-ordered list that dispatches the first rank-minimal entry —
//! under randomized churn, for every scheduling algorithm.
//!
//! The per-algorithm rank shapes are restated here from the scheduler's
//! documented key layout (`SchedAlg::rank`); the crate's own unit test
//! `queue_rank_orders_exactly_like_rank` pins that the storage key
//! (`queue_rank`, seq-last) orders exactly like the dispatch rank, so
//! agreement *here* plus agreement *there* closes the loop between the
//! indexed structure and the conformance oracle's ground truth.

use rtos_model::readyq::{Rank, ReadyQueue};
use rtos_model::SchedAlg;
use std::time::Duration;

/// Deterministic xorshift64* stream.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Synthetic task attributes, mirroring the fields `SchedAlg::rank` reads
/// from a TCB.
#[derive(Clone, Copy)]
struct Task {
    priority: u64,
    /// `Some(period_ns)` for periodic tasks, `None` for aperiodic.
    period_ns: Option<u64>,
    deadline_ns: u64,
    ready_seq: u64,
}

/// The dispatch rank (`SchedAlg::rank` key layout).
fn rank(alg: SchedAlg, t: &Task) -> Rank {
    match alg {
        SchedAlg::PriorityPreemptive | SchedAlg::PriorityCooperative => {
            (t.priority, t.ready_seq, 0)
        }
        SchedAlg::Fifo | SchedAlg::RoundRobin { .. } => (t.ready_seq, 0, 0),
        SchedAlg::Rms => match t.period_ns {
            Some(p) => (0, p, t.ready_seq),
            None => (1, t.priority, t.ready_seq),
        },
        SchedAlg::Edf => (t.deadline_ns, t.priority, t.ready_seq),
        _ => unreachable!("non-exhaustive enum: new algorithm not covered"),
    }
}

/// The storage key (`SchedAlg::queue_rank` key layout: seq always last).
fn queue_rank(alg: SchedAlg, t: &Task) -> Rank {
    match alg {
        SchedAlg::PriorityPreemptive | SchedAlg::PriorityCooperative => {
            (t.priority, 0, t.ready_seq)
        }
        SchedAlg::Fifo | SchedAlg::RoundRobin { .. } => (0, 0, t.ready_seq),
        // RMS and EDF dispatch ranks already carry the seq last.
        _ => rank(alg, t),
    }
}

/// Reference model: the old `Vec<TaskId>` ready list. Selection is a
/// linear scan keeping the *first* entry with the minimal dispatch rank.
struct LinearRef {
    queue: Vec<u32>,
}

impl LinearRef {
    fn first_minimal(&self, tasks: &[Task], alg: SchedAlg) -> Option<u32> {
        let mut best: Option<(Rank, u32)> = None;
        for &id in &self.queue {
            let r = rank(alg, &tasks[id as usize]);
            if best.is_none_or(|(br, _)| r < br) {
                best = Some((r, id));
            }
        }
        best.map(|(_, id)| id)
    }
}

fn random_task(rng: &mut Rng, seq: u64) -> Task {
    let r = rng.next();
    Task {
        priority: r % 8,
        period_ns: if r & (1 << 32) != 0 {
            Some(1_000 * (1 + (r >> 33) % 16))
        } else {
            None
        },
        deadline_ns: 100 * (1 + (r >> 16) % 512),
        ready_seq: seq,
    }
}

#[test]
fn indexed_structure_matches_linear_scan_pick_sequences() {
    let algs = [
        SchedAlg::PriorityPreemptive,
        SchedAlg::PriorityCooperative,
        SchedAlg::Fifo,
        SchedAlg::RoundRobin {
            quantum: Duration::from_micros(100),
        },
        SchedAlg::Rms,
        SchedAlg::Edf,
    ];
    for alg in algs {
        for seed in [1u64, 0x9E37_79B9, 0xFEED_F00D] {
            let mut rng = Rng(seed);
            let mut tasks: Vec<Task> = Vec::new();
            let mut rq = ReadyQueue::for_alg(alg);
            let mut linear = LinearRef { queue: Vec::new() };
            let mut next_seq = 0u64;
            let mut picks = 0u32;

            for step in 0..4_000 {
                match rng.next() % 10 {
                    // Make a fresh task ready (fresh seq: the global
                    // counter only grows).
                    0..=3 => {
                        next_seq += 1;
                        let id = tasks.len() as u32;
                        let t = random_task(&mut rng, next_seq);
                        tasks.push(t);
                        rq.insert(id, queue_rank(alg, &t));
                        linear.queue.push(id);
                    }
                    // Dispatch: both models must pick the same task.
                    4..=6 => {
                        let expect = linear.first_minimal(&tasks, alg);
                        assert_eq!(
                            rq.peek(),
                            expect,
                            "{alg} seed {seed} step {step}: peek diverged"
                        );
                        let got = rq.pop();
                        assert_eq!(got, expect, "{alg} seed {seed} step {step}: pop diverged");
                        if let Some(id) = got {
                            linear.queue.retain(|&q| q != id);
                            picks += 1;
                        }
                    }
                    // Block/kill a random queued task.
                    7 => {
                        if !linear.queue.is_empty() {
                            let victim =
                                linear.queue[(rng.next() % linear.queue.len() as u64) as usize];
                            assert!(rq.remove(victim));
                            linear.queue.retain(|&q| q != victim);
                        }
                    }
                    // Priority-inheritance requeue: re-rank a queued task
                    // in place, keeping its own seq (`boost_priority` on a
                    // READY task).
                    8 => {
                        if !linear.queue.is_empty() {
                            let id =
                                linear.queue[(rng.next() % linear.queue.len() as u64) as usize];
                            let t = &mut tasks[id as usize];
                            t.priority = rng.next() % 8;
                            t.deadline_ns = 100 * (1 + rng.next() % 512);
                            let nr = queue_rank(alg, t);
                            assert!(rq.remove(id));
                            rq.insert(id, nr);
                        }
                    }
                    // Re-activation of a previously dispatched task with a
                    // fresh seq (a task id can re-enter the queue).
                    _ => {
                        if !tasks.is_empty() {
                            let id = (rng.next() % tasks.len() as u64) as u32;
                            if !rq.contains(id) && !linear.queue.contains(&id) {
                                next_seq += 1;
                                tasks[id as usize].ready_seq = next_seq;
                                let t = tasks[id as usize];
                                rq.insert(id, queue_rank(alg, &t));
                                linear.queue.push(id);
                            }
                        }
                    }
                }
                assert_eq!(rq.len(), linear.queue.len());
            }

            // Drain to the end: full remaining order must agree too.
            loop {
                let expect = linear.first_minimal(&tasks, alg);
                let got = rq.pop();
                assert_eq!(got, expect, "{alg} seed {seed}: drain diverged");
                match got {
                    Some(id) => linear.queue.retain(|&q| q != id),
                    None => break,
                }
            }
            assert!(rq.is_empty());
            assert!(picks > 100, "{alg} seed {seed}: degenerate op stream");
        }
    }
}
