//! The Figure 7 refinement exercised across the whole channel library:
//! `Semaphore` and `Handshake` (not just `Queue`) running with RTOS events
//! as their synchronization layer, including ISR-side releases.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rtos_model::{Priority, Rtos, SchedAlg, TaskParams};
use sldl_sim::sync::Mutex;
use sldl_sim::{Child, Handshake, Semaphore, SimTime, Simulation};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

#[test]
fn semaphore_on_rtos_layer_isr_to_task() {
    // The paper's Fig. 3 bus interface, refined: the ISR releases a
    // semaphore whose internal events are RTOS events; the driver task
    // blocks through the RTOS.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let sem: Semaphore<Rtos> = Semaphore::new(0, os.clone());
    let served = Arc::new(AtomicU64::new(0));

    let os_d = os.clone();
    let s = sem.clone();
    let count = Arc::clone(&served);
    sim.spawn(Child::new("driver", move |ctx| {
        let me = os_d.task_create(&TaskParams::aperiodic("driver", Priority(1)));
        os_d.task_activate(ctx, me);
        for _ in 0..3 {
            s.acquire(ctx);
            os_d.time_wait(ctx, us(30));
            count.fetch_add(1, Ordering::SeqCst);
        }
        os_d.task_terminate(ctx);
    }));
    let os_isr = os.clone();
    let s = sem.clone();
    sim.spawn(Child::new("isr", move |ctx| {
        for _ in 0..3 {
            ctx.waitfor(us(100));
            s.release(ctx);
            os_isr.interrupt_return(ctx);
        }
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty(), "{:?}", report.blocked);
    assert_eq!(served.load(Ordering::SeqCst), 3);
    assert_eq!(report.end_time, SimTime::from_micros(330));
}

#[test]
fn handshake_on_rtos_layer_synchronizes_tasks() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let hs: Handshake<Rtos> = Handshake::new(os.clone());
    let log = Arc::new(Mutex::new(Vec::new()));

    let os_a = os.clone();
    let h = hs.clone();
    let l = Arc::clone(&log);
    sim.spawn(Child::new("producer", move |ctx| {
        let me = os_a.task_create(&TaskParams::aperiodic("producer", Priority(2)));
        os_a.task_activate(ctx, me);
        os_a.time_wait(ctx, us(50));
        h.send(ctx);
        l.lock().push(("sent", ctx.now().as_micros()));
        os_a.task_terminate(ctx);
    }));
    let os_b = os.clone();
    let h = hs.clone();
    let l = Arc::clone(&log);
    sim.spawn(Child::new("consumer", move |ctx| {
        let me = os_b.task_create(&TaskParams::aperiodic("consumer", Priority(1)));
        os_b.task_activate(ctx, me);
        h.recv(ctx);
        l.lock().push(("received", ctx.now().as_micros()));
        os_b.task_terminate(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    let log = log.lock().clone();
    // Rendezvous completes when the producer's 50 us of work is done.
    assert!(log.contains(&("sent", 50)));
    assert!(log.contains(&("received", 50)));
}

#[test]
fn mixed_layers_coexist_in_one_simulation() {
    // A raw SLDL semaphore between plain processes AND an RTOS-layer
    // semaphore between tasks, in the same kernel.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let raw: Semaphore<sldl_sim::SldlSync> = Semaphore::new(0, sim.sync_layer());
    let refined: Semaphore<Rtos> = Semaphore::new(0, os.clone());
    let done = Arc::new(AtomicU64::new(0));

    // Plain SLDL pair.
    let r = raw.clone();
    sim.spawn(Child::new("raw_rel", move |ctx| {
        ctx.waitfor(us(10));
        r.release(ctx);
    }));
    let r = raw.clone();
    let d = Arc::clone(&done);
    sim.spawn(Child::new("raw_acq", move |ctx| {
        r.acquire(ctx);
        d.fetch_add(1, Ordering::SeqCst);
    }));

    // RTOS task pair.
    let os_rel = os.clone();
    let s = refined.clone();
    sim.spawn(Child::new("task_rel", move |ctx| {
        let me = os_rel.task_create(&TaskParams::aperiodic("task_rel", Priority(2)));
        os_rel.task_activate(ctx, me);
        os_rel.time_wait(ctx, us(20));
        s.release(ctx);
        os_rel.task_terminate(ctx);
    }));
    let os_acq = os.clone();
    let s = refined.clone();
    let d = Arc::clone(&done);
    sim.spawn(Child::new("task_acq", move |ctx| {
        let me = os_acq.task_create(&TaskParams::aperiodic("task_acq", Priority(1)));
        os_acq.task_activate(ctx, me);
        s.acquire(ctx);
        d.fetch_add(1, Ordering::SeqCst);
        os_acq.task_terminate(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty(), "{:?}", report.blocked);
    assert_eq!(done.load(Ordering::SeqCst), 2);
}

#[test]
fn queue_backpressure_under_rtos_scheduling() {
    // A bounded queue between a fast producer task and a slow consumer
    // task: the producer's RTOS-level blocking shows up as idle CPU, not
    // busy-waiting.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let q: sldl_sim::Queue<u64, Rtos> = sldl_sim::Queue::bounded(1, os.clone());

    let os_p = os.clone();
    let tx = q.clone();
    sim.spawn(Child::new("producer", move |ctx| {
        let me = os_p.task_create(&TaskParams::aperiodic("producer", Priority(1)));
        os_p.task_activate(ctx, me);
        for i in 0..4 {
            os_p.time_wait(ctx, us(5));
            tx.send(ctx, i);
        }
        os_p.task_terminate(ctx);
    }));
    let os_c = os.clone();
    let rx = q.clone();
    sim.spawn(Child::new("consumer", move |ctx| {
        let me = os_c.task_create(&TaskParams::aperiodic("consumer", Priority(2)));
        os_c.task_activate(ctx, me);
        for _ in 0..4 {
            let _ = rx.recv(ctx);
            os_c.time_wait(ctx, us(100));
        }
        os_c.task_terminate(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    // One CPU, and at every instant either the producer or the consumer has
    // work (the producer only blocks while the consumer is busy), so the
    // makespan is exactly the total work: 4×5 + 4×100 = 420 µs.
    assert_eq!(report.end_time, SimTime::from_micros(420));
    let m = os.metrics_at(report.end_time);
    assert_eq!(m.cpu_busy, Duration::from_micros(420));
    assert!((m.utilization() - 1.0).abs() < 1e-9);
}
