//! Robustness layer tests: deadline-miss policies on forced-overrun
//! tasks, ABBA mutex deadlock detection with a named wait cycle, watchdog
//! services, and bounded mutex acquisition.

use std::sync::Arc;
use std::time::Duration;

use rtos_model::{
    CycleOutcome, InheritancePolicy, MissPolicy, MutexError, Priority, Rtos, RtosMutex, SchedAlg,
    TaskParams, WatchdogAction,
};
use sldl_sim::sync::Mutex;
use sldl_sim::{Child, RunError, SimTime, Simulation};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// Runs one periodic task that overruns its 80 us WCET annotation by 2×
/// every cycle (160 us of modeled compute per 100 us period), under the
/// given policy/budget; returns (metrics task stats, cycles actually run).
fn run_overrunner(
    policy: MissPolicy,
    budget: u32,
    cycles: u32,
) -> (rtos_model::MetricsSnapshot, u64) {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let ran = Arc::new(Mutex::new(0u64));
    let os2 = os.clone();
    let ran2 = Arc::clone(&ran);
    sim.spawn(Child::new("overrunner", move |ctx| {
        let mut p = TaskParams::periodic("overrunner", us(100));
        p.priority(Priority(1))
            .wcet(us(80))
            .miss_policy(policy)
            .miss_budget(budget);
        let me = os2.task_create(&p);
        os2.task_activate(ctx, me);
        for _ in 0..cycles {
            os2.time_wait(ctx, us(160)); // forced 2x WCET overrun
            *ran2.lock() += 1;
            if os2.task_endcycle(ctx) == CycleOutcome::Stop {
                return; // killed by policy: leave without task_terminate
            }
        }
        os2.task_terminate(ctx);
    }));
    let report = sim.run_until(SimTime::from_millis(20)).expect("run ok");
    let m = os.metrics_at(report.end_time);
    let ran = *ran.lock();
    (m, ran)
}

#[test]
fn miss_policy_count_accumulates_misses() {
    let (m, ran) = run_overrunner(MissPolicy::Count, 2, 10);
    assert_eq!(ran, 10, "Count never stops the task");
    assert_eq!(m.tasks[0].deadline_misses, 10);
    assert_eq!(m.tasks[0].cycles_skipped, 0);
    assert_eq!(m.tasks[0].restarts, 0);
    assert!(!m.tasks[0].killed_by_policy);
    assert!(m.killed_tasks().is_empty());
}

#[test]
fn miss_policy_skip_cycle_sheds_load() {
    let (m, ran) = run_overrunner(MissPolicy::SkipCycle, 2, 10);
    assert_eq!(ran, 10);
    assert_eq!(m.tasks[0].deadline_misses, 10, "misses are still counted");
    assert!(
        m.tasks[0].cycles_skipped > 0,
        "budget exhaustion must shed release cycles: {:?}",
        m.tasks[0]
    );
    assert_eq!(m.cycles_skipped(), m.tasks[0].cycles_skipped);
}

#[test]
fn miss_policy_kill_task_stops_after_budget() {
    let (m, ran) = run_overrunner(MissPolicy::KillTask, 2, 10);
    // The task dies on its 2nd consecutive miss: exactly 2 cycles ran.
    assert_eq!(ran, 2, "killed after the miss budget");
    assert_eq!(m.tasks[0].deadline_misses, 2);
    assert!(m.tasks[0].killed_by_policy);
    assert_eq!(m.killed_tasks(), vec!["overrunner"]);
}

#[test]
fn miss_policy_restart_rephases_the_task() {
    let (m, ran) = run_overrunner(MissPolicy::RestartTask, 2, 10);
    assert_eq!(ran, 10);
    assert!(
        m.tasks[0].restarts > 0,
        "budget exhaustion must restart: {:?}",
        m.tasks[0]
    );
    assert!(!m.tasks[0].killed_by_policy);
}

#[test]
fn miss_policy_degrade_demotes_exactly_once() {
    let (m, ran) = run_overrunner(MissPolicy::Degrade(Priority(6)), 2, 10);
    assert_eq!(ran, 10);
    assert_eq!(m.tasks[0].degradations, 1, "degrade fires once");
}

#[test]
fn kill_task_frees_the_cpu_for_others() {
    // A well-behaved low-priority task shares the PE with the overrunner.
    // Under KillTask the background task completes all its work inside the
    // horizon; the overrunner's stats show the kill.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let os_o = os.clone();
    sim.spawn(Child::new("overrunner", move |ctx| {
        let mut p = TaskParams::periodic("overrunner", us(100));
        p.priority(Priority(1))
            .wcet(us(80))
            .miss_policy(MissPolicy::KillTask)
            .miss_budget(1);
        let me = os_o.task_create(&p);
        os_o.task_activate(ctx, me);
        loop {
            os_o.time_wait(ctx, us(160));
            if os_o.task_endcycle(ctx) == CycleOutcome::Stop {
                return;
            }
        }
    }));
    let done = Arc::new(Mutex::new(false));
    let done2 = Arc::clone(&done);
    let os_b = os.clone();
    sim.spawn(Child::new("background", move |ctx| {
        let me = os_b.task_create(&TaskParams::aperiodic("background", Priority(5)));
        os_b.task_activate(ctx, me);
        os_b.time_wait(ctx, us(500));
        *done2.lock() = true;
        os_b.task_terminate(ctx);
    }));
    let report = sim.run().expect("run ok");
    assert!(*done.lock(), "background work completed after the kill");
    let m = os.metrics_at(report.end_time);
    let over = m.tasks.iter().find(|t| t.name == "overrunner").unwrap();
    assert!(over.killed_by_policy);
    // Overrunner ran one 160 us cycle, background 500 us.
    assert_eq!(report.end_time, SimTime::from_micros(660));
}

#[test]
fn abba_deadlock_is_detected_with_named_cycle() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let ma = RtosMutex::named(os.clone(), InheritancePolicy::None, "mutexA");
    let mb = RtosMutex::named(os.clone(), InheritancePolicy::None, "mutexB");
    let handoff = os.event_new();

    // t1 (urgent): locks A, parks on an event, then wants B.
    let os1 = os.clone();
    let (ma1, mb1) = (ma.clone(), mb.clone());
    sim.spawn(Child::new("t1", move |ctx| {
        let me = os1.task_create(&TaskParams::aperiodic("t1", Priority(1)));
        os1.task_activate(ctx, me);
        ma1.lock(ctx);
        os1.event_wait(ctx, handoff); // let t2 take B first
        mb1.lock(ctx); // blocks: B held by t2
        unreachable!("t1 must deadlock");
    }));
    // t2: locks B, wakes t1, then wants A.
    let os2 = os.clone();
    sim.spawn(Child::new("t2", move |ctx| {
        let me = os2.task_create(&TaskParams::aperiodic("t2", Priority(2)));
        os2.task_activate(ctx, me);
        mb.lock(ctx);
        os2.event_notify(ctx, handoff); // t1 preempts, blocks on B
        ma.lock(ctx); // blocks: A held by t1 → ABBA cycle closed
        unreachable!("t2 must deadlock");
    }));

    match sim.run() {
        Err(RunError::Deadlock { cycle, blocked, .. }) => {
            assert_eq!(cycle.len(), 2, "two-edge ABBA cycle: {cycle:?}");
            // The cycle closes: each edge's holder is the next edge's waiter.
            for (i, edge) in cycle.iter().enumerate() {
                assert_eq!(edge.holder, cycle[(i + 1) % cycle.len()].waiter);
            }
            let waiters: Vec<&str> = cycle.iter().map(|e| e.waiter.as_str()).collect();
            assert!(
                waiters.contains(&"t1") && waiters.contains(&"t2"),
                "{cycle:?}"
            );
            let resources: Vec<&str> = cycle.iter().map(|e| e.resource.as_str()).collect();
            assert!(
                resources.contains(&"mutexA") && resources.contains(&"mutexB"),
                "{cycle:?}"
            );
            assert!(blocked.contains(&"t1".to_string()));
            assert!(blocked.contains(&"t2".to_string()));
        }
        other => panic!("expected RunError::Deadlock, got {other:?}"),
    }
}

#[test]
fn watchdog_abort_run_names_the_watchdog() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let (wd, monitor) = os.watchdog("heartbeat", us(100), WatchdogAction::AbortRun);
    sim.spawn(monitor);
    let os2 = os.clone();
    sim.spawn(Child::new("worker", move |ctx| {
        let me = os2.task_create(&TaskParams::aperiodic("worker", Priority(1)));
        os2.task_activate(ctx, me);
        // Healthy phase: kicks comfortably inside the window…
        for _ in 0..3 {
            os2.time_wait(ctx, us(50));
            wd.kick(ctx);
        }
        // …then goes silent for far longer than the timeout.
        os2.time_wait(ctx, us(1_000));
        os2.task_terminate(ctx);
    }));
    match sim.run() {
        Err(RunError::WatchdogExpired { watchdog, at }) => {
            assert_eq!(watchdog, "heartbeat");
            // Last kick at 150 us; expiry one timeout later.
            assert_eq!(at, SimTime::from_micros(250));
        }
        other => panic!("expected RunError::WatchdogExpired, got {other:?}"),
    }
}

#[test]
fn watchdog_count_records_trips_and_run_survives() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let (wd, monitor) = os.watchdog("heartbeat", us(100), WatchdogAction::Count);
    sim.spawn(monitor);
    let os2 = os.clone();
    let wd2 = wd.clone();
    sim.spawn(Child::new("worker", move |ctx| {
        let me = os2.task_create(&TaskParams::aperiodic("worker", Priority(1)));
        os2.task_activate(ctx, me);
        os2.time_wait(ctx, us(350)); // silent: ~3 trips
        wd2.disarm();
        wd2.kick(ctx); // retire the monitor immediately
        os2.task_terminate(ctx);
    }));
    let report = sim.run().expect("Count trips never abort");
    assert!(
        report.blocked.is_empty(),
        "monitor retired: {:?}",
        report.blocked
    );
    let m = os.metrics_at(report.end_time);
    assert_eq!(m.watchdog_trips, 3, "one trip per elapsed window");
}

#[test]
fn lock_timeout_reports_self_deadlock_as_already_owned() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let m = RtosMutex::named(os.clone(), InheritancePolicy::Inherit, "m");
    let os2 = os.clone();
    sim.spawn(Child::new("t", move |ctx| {
        let me = os2.task_create(&TaskParams::aperiodic("t", Priority(1)));
        os2.task_activate(ctx, me);
        assert_eq!(m.lock_timeout(ctx, us(10)), Ok(()));
        // The hazard: re-acquiring a non-recursive mutex we already hold
        // would block forever — reported as an error instead.
        assert_eq!(m.lock_timeout(ctx, us(10)), Err(MutexError::AlreadyOwned));
        m.unlock(ctx);
        os2.task_terminate(ctx);
    }));
    sim.run().expect("run ok");
}

#[test]
fn lock_timeout_times_out_while_held_and_succeeds_after_release() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let m = RtosMutex::named(os.clone(), InheritancePolicy::Inherit, "m");
    let outcome = Arc::new(Mutex::new(Vec::new()));
    let release_ev = os.event_new();

    // Holder (urgent): grabs the mutex, then parks on an event — holding
    // the lock while the CPU is free (a single-CPU model serializes
    // compute, so the contender can only *attempt* the lock while the
    // holder is blocked, not while it is computing).
    let os_h = os.clone();
    let mh = m.clone();
    sim.spawn(Child::new("holder", move |ctx| {
        let me = os_h.task_create(&TaskParams::aperiodic("holder", Priority(1)));
        os_h.task_activate(ctx, me);
        mh.lock(ctx);
        os_h.event_wait(ctx, release_ev);
        mh.unlock(ctx);
        os_h.task_terminate(ctx);
    }));
    // Contender: a 100 us bound fails while the holder sits on the lock;
    // after asking the holder to release, a second attempt succeeds.
    let os_c = os.clone();
    let out2 = Arc::clone(&outcome);
    sim.spawn(Child::new("contender", move |ctx| {
        let me = os_c.task_create(&TaskParams::aperiodic("contender", Priority(2)));
        os_c.task_activate(ctx, me);
        let first = m.lock_timeout(ctx, us(100));
        out2.lock().push((first, ctx.now()));
        os_c.event_notify(ctx, release_ev); // holder wakes and unlocks
        let second = m.lock_timeout(ctx, us(1_000));
        out2.lock().push((second, ctx.now()));
        if second.is_ok() {
            m.unlock(ctx);
        }
        os_c.task_terminate(ctx);
    }));
    let report = sim.run().expect("run ok");
    assert!(report.blocked.is_empty());
    let out = outcome.lock().clone();
    assert_eq!(out[0].0, Err(MutexError::Timeout));
    assert_eq!(out[0].1, SimTime::from_micros(100), "bounded wait honored");
    assert_eq!(out[1].0, Ok(()));
    assert_eq!(out[1].1, SimTime::from_micros(100), "acquired on release");
}
