//! Property-based tests: under *any* scheduling algorithm, the RTOS model
//! must serialize task execution (total makespan = sum of work, zero trace
//! overlap), conserve CPU time, and simulate deterministically.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use proptest::prelude::*;
use rtos_model::{Priority, Rtos, SchedAlg, TaskParams, TimeSlice};
use sldl_sim::{Child, SimTime, Simulation, TraceConfig};

#[derive(Debug, Clone)]
struct TaskSpec {
    priority: u32,
    steps: Vec<u64>, // microseconds per time_wait step
}

fn task_set_strategy() -> impl Strategy<Value = Vec<TaskSpec>> {
    proptest::collection::vec(
        ((0u32..8), proptest::collection::vec(1u64..400, 1..6))
            .prop_map(|(priority, steps)| TaskSpec { priority, steps }),
        1..6,
    )
}

fn alg_strategy() -> impl Strategy<Value = SchedAlg> {
    prop_oneof![
        Just(SchedAlg::PriorityPreemptive),
        Just(SchedAlg::PriorityCooperative),
        Just(SchedAlg::Fifo),
        Just(SchedAlg::RoundRobin {
            quantum: Duration::from_micros(100)
        }),
        Just(SchedAlg::Edf),
    ]
}

fn slice_strategy() -> impl Strategy<Value = TimeSlice> {
    prop_oneof![
        Just(TimeSlice::WholeDelay),
        (10u64..200).prop_map(|q| TimeSlice::Quantum(Duration::from_micros(q))),
    ]
}

/// Runs a task set; returns (end time, completion log, context switches,
/// cpu busy time).
fn run_set(
    specs: &[TaskSpec],
    alg: SchedAlg,
    slice: TimeSlice,
) -> (SimTime, Vec<(String, u64)>, u64, Duration) {
    let mut sim = Simulation::new();
    let trace = sim.enable_trace(TraceConfig::default());
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(alg);
    os.set_time_slice(slice);
    os.attach_trace(trace.clone());
    let log = Arc::new(Mutex::new(Vec::new()));
    for (i, spec) in specs.iter().enumerate() {
        let os = os.clone();
        let spec = spec.clone();
        let log = Arc::clone(&log);
        let name = format!("t{i}");
        sim.spawn(Child::new(name.clone(), move |ctx| {
            let me = os.task_create(&TaskParams::aperiodic(&name, Priority(spec.priority)));
            os.task_activate(ctx, me);
            for d in &spec.steps {
                os.time_wait(ctx, Duration::from_micros(*d));
            }
            log.lock().push((name.clone(), ctx.now().as_micros()));
            os.task_terminate(ctx);
        }));
    }
    let report = sim.run().expect("no panics");
    assert!(report.blocked.is_empty(), "blocked: {:?}", report.blocked);

    // Serialization invariant: no two task execution segments overlap.
    let segs = sldl_sim::trace::segments(&trace.snapshot());
    let tracks: Vec<&Vec<_>> = segs.values().collect();
    for i in 0..tracks.len() {
        for j in (i + 1)..tracks.len() {
            assert_eq!(
                sldl_sim::trace::overlap(tracks[i], tracks[j]),
                Duration::ZERO,
                "RTOS must serialize task execution"
            );
        }
    }

    let m = os.metrics();
    let completions = log.lock().clone();
    (report.end_time, completions, m.context_switches, m.cpu_busy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn makespan_equals_total_work_and_time_is_conserved(
        specs in task_set_strategy(),
        alg in alg_strategy(),
        slice in slice_strategy(),
    ) {
        let total: u64 = specs.iter().flat_map(|s| s.steps.iter()).sum();
        let (end, log, _switches, busy) = run_set(&specs, alg, slice);
        // All tasks start at t=0 and only consume modeled CPU time, so the
        // serialized makespan is exactly the total work.
        prop_assert_eq!(end, SimTime::from_micros(total));
        prop_assert_eq!(busy, Duration::from_micros(total));
        prop_assert_eq!(log.len(), specs.len());
        // The last completion coincides with the makespan.
        let last = log.iter().map(|(_, t)| *t).max().unwrap();
        prop_assert_eq!(last, total);
    }

    #[test]
    fn runs_are_deterministic(
        specs in task_set_strategy(),
        alg in alg_strategy(),
        slice in slice_strategy(),
    ) {
        let a = run_set(&specs, alg, slice);
        let b = run_set(&specs, alg, slice);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn priority_preemptive_highest_priority_finishes_no_later_than_others(
        specs in task_set_strategy(),
    ) {
        let (_, log, _, _) = run_set(&specs, SchedAlg::PriorityPreemptive, TimeSlice::WholeDelay);
        // Find the set of most urgent tasks; each must finish no later than
        // any strictly less urgent task *that has no earlier queue position*.
        let best = specs.iter().map(|s| s.priority).min().unwrap();
        let best_work_max: u64 = specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.priority == best)
            .map(|(i, _)| log.iter().find(|(n, _)| n == &format!("t{i}")).unwrap().1)
            .max()
            .unwrap();
        let best_total: u64 = specs
            .iter()
            .filter(|s| s.priority == best)
            .flat_map(|s| s.steps.iter())
            .sum();
        // All most-urgent tasks complete within their own total work span.
        prop_assert_eq!(best_work_max, best_total);
    }

    #[test]
    fn slicing_never_changes_total_time(
        specs in task_set_strategy(),
        alg in alg_strategy(),
    ) {
        let whole = run_set(&specs, alg, TimeSlice::WholeDelay);
        let sliced = run_set(&specs, alg, TimeSlice::Quantum(Duration::from_micros(37)));
        // Slicing refines *when* switches happen, not how much work exists.
        prop_assert_eq!(whole.0, sliced.0);
        prop_assert_eq!(whole.3, sliced.3);
    }
}
