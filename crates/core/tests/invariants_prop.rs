//! Property-based tests: under *any* scheduling algorithm, the RTOS model
//! must serialize task execution (total makespan = sum of work, zero trace
//! overlap), conserve CPU time, and simulate deterministically.
//!
//! Randomized inputs are drawn from the workspace's seeded
//! [`SmallRng`] (fixed seeds, many cases per property), so failures are
//! reproducible from the printed seed alone.

use std::sync::Arc;
use std::time::Duration;

use rtos_model::{Priority, Rtos, SchedAlg, TaskParams, TimeSlice};
use sldl_sim::sync::Mutex;
use sldl_sim::{Child, SimTime, Simulation, SmallRng, TraceConfig};

#[derive(Debug, Clone)]
struct TaskSpec {
    priority: u32,
    steps: Vec<u64>, // microseconds per time_wait step
}

fn random_task_set(rng: &mut SmallRng) -> Vec<TaskSpec> {
    let n = 1 + rng.gen_range_usize(5);
    (0..n)
        .map(|_| TaskSpec {
            priority: rng.gen_range_u64(8) as u32,
            steps: (0..1 + rng.gen_range_usize(5))
                .map(|_| 1 + rng.gen_range_u64(399))
                .collect(),
        })
        .collect()
}

fn random_alg(rng: &mut SmallRng) -> SchedAlg {
    match rng.gen_range_u64(5) {
        0 => SchedAlg::PriorityPreemptive,
        1 => SchedAlg::PriorityCooperative,
        2 => SchedAlg::Fifo,
        3 => SchedAlg::RoundRobin {
            quantum: Duration::from_micros(100),
        },
        _ => SchedAlg::Edf,
    }
}

fn random_slice(rng: &mut SmallRng) -> TimeSlice {
    if rng.gen_bool(0.5) {
        TimeSlice::WholeDelay
    } else {
        TimeSlice::Quantum(Duration::from_micros(10 + rng.gen_range_u64(190)))
    }
}

/// Runs a task set; returns (end time, completion log, context switches,
/// cpu busy time).
fn run_set(
    specs: &[TaskSpec],
    alg: SchedAlg,
    slice: TimeSlice,
) -> (SimTime, Vec<(String, u64)>, u64, Duration) {
    let mut sim = Simulation::builder().trace(TraceConfig::default()).build();
    let trace = sim.trace_handle().expect("trace configured");
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(alg);
    os.set_time_slice(slice);
    os.attach_trace(trace.clone());
    let log = Arc::new(Mutex::new(Vec::new()));
    for (i, spec) in specs.iter().enumerate() {
        let os = os.clone();
        let spec = spec.clone();
        let log = Arc::clone(&log);
        let name = format!("t{i}");
        sim.spawn(Child::new(name.clone(), move |ctx| {
            let me = os.task_create(&TaskParams::aperiodic(&name, Priority(spec.priority)));
            os.task_activate(ctx, me);
            for d in &spec.steps {
                os.time_wait(ctx, Duration::from_micros(*d));
            }
            log.lock().push((name.clone(), ctx.now().as_micros()));
            os.task_terminate(ctx);
        }));
    }
    let report = sim.run().expect("no panics");
    assert!(report.blocked.is_empty(), "blocked: {:?}", report.blocked);

    // Serialization invariant: no two task execution segments overlap.
    let segs = sldl_sim::trace::segments(&trace.snapshot());
    let tracks: Vec<&Vec<_>> = segs.values().collect();
    for i in 0..tracks.len() {
        for j in (i + 1)..tracks.len() {
            assert_eq!(
                sldl_sim::trace::overlap(tracks[i], tracks[j]),
                Duration::ZERO,
                "RTOS must serialize task execution"
            );
        }
    }

    let m = os.metrics();
    let completions = log.lock().clone();
    (report.end_time, completions, m.context_switches, m.cpu_busy)
}

#[test]
fn makespan_equals_total_work_and_time_is_conserved() {
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let specs = random_task_set(&mut rng);
        let alg = random_alg(&mut rng);
        let slice = random_slice(&mut rng);
        let total: u64 = specs.iter().flat_map(|s| s.steps.iter()).sum();
        let (end, log, _switches, busy) = run_set(&specs, alg, slice);
        // All tasks start at t=0 and only consume modeled CPU time, so the
        // serialized makespan is exactly the total work.
        assert_eq!(end, SimTime::from_micros(total), "seed {seed}");
        assert_eq!(busy, Duration::from_micros(total), "seed {seed}");
        assert_eq!(log.len(), specs.len(), "seed {seed}");
        // The last completion coincides with the makespan.
        let last = log.iter().map(|(_, t)| *t).max().unwrap();
        assert_eq!(last, total, "seed {seed}");
    }
}

#[test]
fn runs_are_deterministic() {
    for seed in 100..124u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let specs = random_task_set(&mut rng);
        let alg = random_alg(&mut rng);
        let slice = random_slice(&mut rng);
        let a = run_set(&specs, alg, slice);
        let b = run_set(&specs, alg, slice);
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn priority_preemptive_highest_priority_finishes_no_later_than_others() {
    for seed in 200..224u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let specs = random_task_set(&mut rng);
        let (_, log, _, _) = run_set(&specs, SchedAlg::PriorityPreemptive, TimeSlice::WholeDelay);
        // Find the set of most urgent tasks; each must finish no later than
        // any strictly less urgent task *that has no earlier queue position*.
        let best = specs.iter().map(|s| s.priority).min().unwrap();
        let best_work_max: u64 = specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.priority == best)
            .map(|(i, _)| log.iter().find(|(n, _)| n == &format!("t{i}")).unwrap().1)
            .max()
            .unwrap();
        let best_total: u64 = specs
            .iter()
            .filter(|s| s.priority == best)
            .flat_map(|s| s.steps.iter())
            .sum();
        // All most-urgent tasks complete within their own total work span.
        assert_eq!(best_work_max, best_total, "seed {seed}");
    }
}

#[test]
fn slicing_never_changes_total_time() {
    for seed in 300..324u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let specs = random_task_set(&mut rng);
        let alg = random_alg(&mut rng);
        let whole = run_set(&specs, alg, TimeSlice::WholeDelay);
        let sliced = run_set(&specs, alg, TimeSlice::Quantum(Duration::from_micros(37)));
        // Slicing refines *when* switches happen, not how much work exists.
        assert_eq!(whole.0, sliced.0, "seed {seed}");
        assert_eq!(whole.3, sliced.3, "seed {seed}");
    }
}
