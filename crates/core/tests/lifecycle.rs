//! Lifecycle and corner-case tests: instance reuse via `init`, ISR-driven
//! task resumption, EDF deadline rollover across cycles, and misuse
//! diagnostics.

use std::sync::Arc;
use std::time::Duration;

use rtos_model::{Priority, Rtos, SchedAlg, TaskParams, TaskState};
use sldl_sim::sync::Mutex;
use sldl_sim::{Child, SimTime, Simulation};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

#[test]
fn init_resets_the_instance_for_reuse() {
    // First simulation on the instance.
    {
        let mut sim = Simulation::new();
        let os = Rtos::new("pe", sim.sync_layer());
        os.start(SchedAlg::PriorityPreemptive);
        let os2 = os.clone();
        sim.spawn(Child::new("t", move |ctx| {
            let me = os2.task_create(&TaskParams::aperiodic("t", Priority(1)));
            os2.task_activate(ctx, me);
            os2.time_wait(ctx, us(100));
            os2.task_terminate(ctx);
        }));
        sim.run().unwrap();
        assert_eq!(os.metrics().tasks.len(), 1);
        // The paper's `init`: clear all kernel structures.
        os.init();
        assert_eq!(os.metrics().tasks.len(), 0);
        assert_eq!(os.metrics().context_switches, 0);
    }
}

#[test]
fn isr_resumes_a_sleeping_task() {
    // `task_activate` from interrupt context (not a task) must move the
    // sleeper back to ready and dispatch it if the CPU is idle.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let tid_cell = Arc::new(Mutex::new(None));
    let woke_at = Arc::new(Mutex::new(None));

    let os_t = os.clone();
    let tc = Arc::clone(&tid_cell);
    let w = Arc::clone(&woke_at);
    sim.spawn(Child::new("sleeper", move |ctx| {
        let me = os_t.task_create(&TaskParams::aperiodic("sleeper", Priority(1)));
        *tc.lock() = Some(me);
        os_t.task_activate(ctx, me);
        os_t.task_sleep(ctx);
        *w.lock() = Some(ctx.now());
        os_t.task_terminate(ctx);
    }));
    let os_isr = os.clone();
    let tc = Arc::clone(&tid_cell);
    sim.spawn(Child::new("wake_isr", move |ctx| {
        ctx.waitfor(us(75));
        let tid = tc.lock().expect("sleeper registered");
        os_isr.task_activate(ctx, tid); // ISR-context resume
        os_isr.interrupt_return(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    assert_eq!(*woke_at.lock(), Some(SimTime::from_micros(75)));
}

#[test]
fn edf_deadline_rolls_over_each_cycle() {
    // Two periodic tasks under EDF: the one whose *current* deadline is
    // nearer runs first, and that flips as cycles advance.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::Edf);
    let order = Arc::new(Mutex::new(Vec::new()));
    for (name, period_us, work_us) in [("a", 1_000u64, 100u64), ("b", 1_500, 200)] {
        let os = os.clone();
        let order = Arc::clone(&order);
        sim.spawn(Child::new(name, move |ctx| {
            let me = os.task_create(&TaskParams::periodic(name, us(period_us)));
            os.task_activate(ctx, me);
            for _ in 0..4 {
                os.time_wait(ctx, us(work_us));
                order.lock().push((name, ctx.now().as_micros()));
                let _ = os.task_endcycle(ctx); // Count policy: always Continue
            }
            os.task_terminate(ctx);
        }));
    }
    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    let order = order.lock().clone();
    // t=0: deadlines 1000 (a) vs 1500 (b): a first.
    assert_eq!(order[0], ("a", 100));
    assert_eq!(order[1], ("b", 300));
    // At t=3000: a's release (deadline 4000); b's third release at 3000
    // (deadline 4500) → a wins again; but at t=1500 b (deadline 3000) vs
    // a's release at 2000 (deadline 3000)… verify the trace is consistent
    // and nobody misses.
    let m = os.metrics();
    assert_eq!(m.deadline_misses(), 0);
    assert_eq!(order.len(), 8);
}

#[test]
fn terminated_task_cannot_be_activated() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let tid_cell = Arc::new(Mutex::new(None));
    let os_a = os.clone();
    let tc = Arc::clone(&tid_cell);
    sim.spawn(Child::new("short", move |ctx| {
        let me = os_a.task_create(&TaskParams::aperiodic("short", Priority(1)));
        *tc.lock() = Some(me);
        os_a.task_activate(ctx, me);
        os_a.task_terminate(ctx);
    }));
    let os_b = os.clone();
    let tc = Arc::clone(&tid_cell);
    sim.spawn(Child::new("necromancer", move |ctx| {
        let me = os_b.task_create(&TaskParams::aperiodic("necromancer", Priority(2)));
        os_b.task_activate(ctx, me);
        os_b.time_wait(ctx, us(10));
        let dead = tc.lock().expect("short ran");
        assert_eq!(os_b.task_state(dead), TaskState::Terminated);
        os_b.task_activate(ctx, dead); // must panic
    }));
    assert!(matches!(
        sim.run(),
        Err(sldl_sim::RunError::ProcessPanicked { .. })
    ));
}

#[test]
fn time_wait_from_unbound_process_panics() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let os2 = os.clone();
    sim.spawn(Child::new("not_a_task", move |ctx| {
        os2.time_wait(ctx, us(10));
    }));
    match sim.run() {
        // Misuse is now a *typed* error (not a raw panic) carrying the
        // offending layer and the user call-site location.
        Err(sldl_sim::RunError::ModelMisuse {
            process,
            location,
            error,
        }) => {
            assert_eq!(process, "not_a_task");
            assert!(error.to_string().contains("not bound to a task"), "{error}");
            assert!(!location.is_empty());
        }
        other => panic!("expected misuse error, got {other:?}"),
    }
}

#[test]
fn event_del_with_waiters_panics() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let e = os.event_new();
    let os_w = os.clone();
    sim.spawn(Child::new("waiter", move |ctx| {
        let me = os_w.task_create(&TaskParams::aperiodic("waiter", Priority(1)));
        os_w.task_activate(ctx, me);
        os_w.event_wait(ctx, e);
    }));
    let os_d = os.clone();
    sim.spawn(Child::new("deleter", move |ctx| {
        let me = os_d.task_create(&TaskParams::aperiodic("deleter", Priority(2)));
        os_d.task_activate(ctx, me);
        os_d.time_wait(ctx, us(5));
        os_d.event_del(e); // waiter still queued → panic
    }));
    assert!(matches!(
        sim.run(),
        Err(sldl_sim::RunError::ProcessPanicked { .. })
    ));
}

#[test]
fn dispatch_latency_includes_switch_cost_position() {
    // With a modeled switch cost, the makespan stretches but per-task busy
    // time still counts the overhead against the dispatched task.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    os.set_context_switch_cost(us(20));
    for (name, prio, work) in [("a", 1u32, 100u64), ("b", 2, 100)] {
        let os = os.clone();
        sim.spawn(Child::new(name, move |ctx| {
            let me = os.task_create(&TaskParams::aperiodic(name, Priority(prio)));
            os.task_activate(ctx, me);
            os.time_wait(ctx, us(work));
            os.task_terminate(ctx);
        }));
    }
    let report = sim.run().unwrap();
    assert_eq!(report.end_time, SimTime::from_micros(220));
    let m = os.metrics_at(report.end_time);
    // All simulated time was CPU-busy (work + kernel overhead).
    assert_eq!(m.cpu_busy, us(220));
}
