//! Scheduler conformance under kernel chaos.
//!
//! The chaos engine perturbs *kernel* decisions (same-delta dispatch
//! order, handoff stalls) underneath the RTOS model. These tests pin down
//! that the RTOS layer stays well-formed under that pressure:
//!
//! * a chaotic run is a pure function of its seed (replays are exact);
//! * the scheduler conformance oracle (`set_conformance_checks`) and the
//!   kernel invariant oracle both stay quiet across a 64-seed sweep of a
//!   workload mixing `RtosMutex::lock_timeout` bounded waits with
//!   deadline-miss policies;
//! * enabling the oracles does not change observable results.

use std::sync::Arc;
use std::time::Duration;

use rtos_model::{
    CycleOutcome, InheritancePolicy, MissPolicy, MutexError, Priority, Rtos, RtosMutex, SchedAlg,
    TaskParams,
};
use sldl_sim::sync::Mutex;
use sldl_sim::{ChaosPlan, Child, KernelInvariants, SimTime, Simulation};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// Observable digest of one scenario run: end time, context switches,
/// deadline misses, and the time-stamped mutex-acquisition log.
type Digest = (SimTime, u64, u64, Vec<(u64, Result<(), MutexError>)>);

/// A PE mixing the two robustness features named by the issue: a periodic
/// overrunner governed by a deadline-miss policy, and two aperiodic tasks
/// contending on a mutex through bounded `lock_timeout` waits.
fn run_scenario(chaos: Option<ChaosPlan>, oracle: bool) -> Digest {
    let mut builder = Simulation::builder();
    if let Some(plan) = chaos {
        builder = builder.chaos_plan(plan);
    }
    if oracle {
        builder = builder.invariants(KernelInvariants::all());
    }
    let mut sim = builder.build();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    os.set_conformance_checks(oracle);
    let m = RtosMutex::named(os.clone(), InheritancePolicy::Inherit, "shared");
    let locks = Arc::new(Mutex::new(Vec::new()));

    // Periodic task that overruns its WCET every cycle; SkipCycle sheds
    // load once the budget is exhausted. Its preemptions give the chaos
    // engine same-delta queues to reorder.
    let os_o = os.clone();
    sim.spawn(Child::new("overrunner", move |ctx| {
        let mut p = TaskParams::periodic("overrunner", us(100));
        p.priority(Priority(1))
            .wcet(us(40))
            .miss_policy(MissPolicy::SkipCycle)
            .miss_budget(2);
        let me = os_o.task_create(&p);
        os_o.task_activate(ctx, me);
        for _ in 0..6 {
            os_o.time_wait(ctx, us(130)); // overruns the 100 us period
            if os_o.task_endcycle(ctx) == CycleOutcome::Stop {
                return;
            }
        }
        os_o.task_terminate(ctx);
    }));
    // Holder: grabs the mutex and parks on an RTOS event while holding it
    // — on a single CPU a lock can only be *attempted* while the holder is
    // blocked, so this is what makes bounded waits genuinely expire.
    let release_ev = os.event_new();
    let os_h = os.clone();
    let mh = m.clone();
    sim.spawn(Child::new("holder", move |ctx| {
        let me = os_h.task_create(&TaskParams::aperiodic("holder", Priority(2)));
        os_h.task_activate(ctx, me);
        mh.lock(ctx);
        os_h.event_wait(ctx, release_ev);
        mh.unlock(ctx);
        os_h.task_terminate(ctx);
    }));
    // Two same-priority contenders hammer the mutex with bounded waits.
    // A timed-out contender asks the holder to release, so later attempts
    // succeed: both Ok and Timeout outcomes occur in every run.
    for i in 0..2u32 {
        let os_c = os.clone();
        let mc = m.clone();
        let log = Arc::clone(&locks);
        sim.spawn(Child::new(format!("contender{i}"), move |ctx| {
            let me = os_c.task_create(&TaskParams::aperiodic(format!("contender{i}"), Priority(3)));
            os_c.task_activate(ctx, me);
            for _ in 0..4 {
                let got = mc.lock_timeout(ctx, us(35));
                log.lock().push((ctx.now().as_micros(), got));
                match got {
                    Ok(()) => {
                        os_c.time_wait(ctx, us(20));
                        mc.unlock(ctx);
                    }
                    Err(_) => os_c.event_notify(ctx, release_ev),
                }
                os_c.time_wait(ctx, us(10));
            }
            // Retire the holder in case every bounded wait happened to
            // succeed (a lost notify on a free event is harmless).
            os_c.event_notify(ctx, release_ev);
            os_c.task_terminate(ctx);
        }));
    }

    let report = sim.run().expect("scenario must survive chaos");
    let metrics = os.metrics_at(report.end_time);
    let misses: u64 = metrics.tasks.iter().map(|t| t.deadline_misses).sum();
    let locks = Arc::try_unwrap(locks).unwrap().into_inner();
    (report.end_time, metrics.context_switches, misses, locks)
}

fn torture_plan(seed: u64) -> ChaosPlan {
    ChaosPlan::seeded(seed).with_reorder(0.6).with_stall(0.4)
}

#[test]
fn scenario_exercises_both_lock_outcomes() {
    let (_, _, misses, locks) = run_scenario(None, false);
    assert!(misses > 0, "overrunner must miss deadlines");
    assert!(locks.iter().any(|(_, r)| r.is_ok()), "{locks:?}");
    assert!(
        locks.iter().any(|(_, r)| *r == Err(MutexError::Timeout)),
        "bounded waits must also time out: {locks:?}"
    );
}

#[test]
fn chaotic_runs_replay_exactly_per_seed() {
    for seed in 0..8u64 {
        let a = run_scenario(Some(torture_plan(seed)), false);
        let b = run_scenario(Some(torture_plan(seed)), false);
        assert_eq!(a, b, "seed {seed} did not replay");
    }
}

#[test]
fn oracles_do_not_change_observable_results() {
    for seed in [3u64, 11, 42] {
        let bare = run_scenario(Some(torture_plan(seed)), false);
        let checked = run_scenario(Some(torture_plan(seed)), true);
        assert_eq!(bare, checked, "oracle perturbed seed {seed}");
    }
}

#[test]
fn conformance_and_kernel_oracle_pass_across_64_seeds() {
    // The acceptance sweep: every dispatch conformance check and every
    // kernel invariant must hold on all 64 chaotic schedules. run_scenario
    // unwraps the run, so any InvariantViolation fails the test with the
    // offending seed in the panic message.
    for seed in 0..64u64 {
        let digest = run_scenario(Some(torture_plan(seed)), true);
        assert!(!digest.3.is_empty(), "seed {seed} produced no lock traffic");
    }
}
