//! Cross-validation of analytic schedulability results against the
//! simulated RTOS model: response-time analysis (RTA) bounds must dominate
//! every simulated response time, the synchronous release (critical
//! instant) must attain the RTA bound exactly, and utilization-based tests
//! must agree with simulated deadline behavior.

use std::time::Duration;

use rtos_model::analysis::{
    edf_schedulable, liu_layland_bound, rta_rms, total_utilization, PeriodicSpec,
};
use rtos_model::{CycleOutcome, Rtos, SchedAlg, TaskParams, TimeSlice};
use sldl_sim::{Child, SimTime, Simulation, SmallRng};

/// Simulates `tasks` under the given algorithm until `horizon`; returns
/// per-task (worst observed response, deadline misses).
fn simulate(tasks: &[PeriodicSpec], alg: SchedAlg, horizon: SimTime) -> Vec<(Duration, u64)> {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(alg);
    // Fine slices: analytic RTA assumes ideal preemption.
    os.set_time_slice(TimeSlice::Quantum(Duration::from_micros(10)));
    for (i, t) in tasks.iter().enumerate() {
        let os = os.clone();
        let spec = *t;
        sim.spawn(Child::new(format!("p{i}"), move |ctx| {
            let mut params = TaskParams::periodic(format!("p{i}"), spec.period);
            params.wcet(spec.wcet);
            let me = os.task_create(&params);
            os.task_activate(ctx, me);
            loop {
                os.time_wait(ctx, spec.wcet);
                if os.task_endcycle(ctx) == CycleOutcome::Stop {
                    break;
                }
            }
        }));
    }
    let report = sim.run_until(horizon).expect("no panics");
    let m = os.metrics_at(report.end_time);
    m.tasks
        .iter()
        .map(|s| {
            (
                s.cycle_response_times
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or_default(),
                s.deadline_misses,
            )
        })
        .collect()
}

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

#[test]
fn rta_bound_is_attained_at_the_critical_instant() {
    // Synchronous release at t=0 is the critical instant for RMS: the
    // simulated first-cycle responses equal the analytic bounds exactly.
    let tasks = [
        PeriodicSpec::new(us(100), us(400)),
        PeriodicSpec::new(us(200), us(800)),
        PeriodicSpec::new(us(300), us(1200)),
    ];
    let analytic = rta_rms(&tasks).expect("schedulable");
    let simulated = simulate(&tasks, SchedAlg::Rms, SimTime::from_millis(20));
    for (i, ((worst, misses), bound)) in simulated.iter().zip(&analytic).enumerate() {
        assert_eq!(*misses, 0, "task {i} missed deadlines");
        assert_eq!(
            worst, bound,
            "task {i}: simulated worst {worst:?} vs analytic {bound:?}"
        );
    }
}

#[test]
fn liu_layland_sets_never_miss_under_rms() {
    // Utilization 0.72 < bound(3) ≈ 0.7798.
    let tasks = [
        PeriodicSpec::new(us(120), us(500)),
        PeriodicSpec::new(us(240), us(1000)),
        PeriodicSpec::new(us(480), us(2000)),
    ];
    assert!(total_utilization(&tasks) < liu_layland_bound(3));
    let simulated = simulate(&tasks, SchedAlg::Rms, SimTime::from_millis(50));
    assert!(simulated.iter().all(|(_, m)| *m == 0));
}

#[test]
fn edf_schedules_full_utilization_where_rms_misses() {
    // Classic example: RMS-infeasible at utilization 1.0, EDF-feasible.
    let tasks = [
        PeriodicSpec::new(us(250), us(500)),
        PeriodicSpec::new(us(350), us(700)),
    ];
    assert!((total_utilization(&tasks) - 1.0).abs() < 1e-9);
    assert!(edf_schedulable(&tasks));
    assert!(
        rta_rms(&tasks).is_none(),
        "RMS analysis must reject this set"
    );

    let edf = simulate(&tasks, SchedAlg::Edf, SimTime::from_millis(30));
    assert!(edf.iter().all(|(_, m)| *m == 0), "EDF missed: {edf:?}");
    let rms = simulate(&tasks, SchedAlg::Rms, SimTime::from_millis(30));
    assert!(
        rms.iter().any(|(_, m)| *m > 0),
        "RMS should miss deadlines on this set"
    );
}

/// For random RMS-schedulable sets, simulation never exceeds the RTA
/// bound, for any release pattern reachable from synchronous start.
#[test]
fn simulated_responses_never_exceed_rta() {
    let mut checked = 0u32;
    let mut seed = 0u64;
    while checked < 12 {
        seed += 1;
        let mut rng = SmallRng::seed_from_u64(seed);
        // Periods are multiples of 100us and wcets multiples of 10us so
        // every scheduling event lands on the 10us slice grid — RTA
        // assumes ideal (zero-quantization) preemption.
        let n = 1 + rng.gen_range_usize(4);
        let tasks: Vec<PeriodicSpec> = (0..n)
            .map(|_| {
                let p = 1 + rng.gen_range_u64(29);
                let frac = 1 + rng.gen_range_u64(5);
                let period = us(p * 100);
                let wcet = us(((p * 100 / (frac + 2)) / 10 * 10).max(10));
                PeriodicSpec::new(wcet, period)
            })
            .collect();
        if total_utilization(&tasks) >= 0.95 {
            continue; // analytic regime only (mirrors the old prop_assume)
        }
        let Some(bounds) = rta_rms(&tasks) else {
            // Analysis rejects: nothing to check (we only verify soundness
            // of accepted sets).
            continue;
        };
        checked += 1;
        let simulated = simulate(&tasks, SchedAlg::Rms, SimTime::from_millis(20));
        for (i, ((worst, misses), bound)) in simulated.iter().zip(&bounds).enumerate() {
            assert_eq!(*misses, 0, "task {i} missed, seed {seed}");
            assert!(
                worst <= bound,
                "task {i}: simulated {worst:?} > analytic {bound:?}, seed {seed}"
            );
        }
    }
}
