//! Integration tests for the RTOS model: serialization, priorities,
//! preemption at delay boundaries (the paper's Fig. 8(b) behavior), and the
//! scheduling algorithms.

use std::sync::Arc;
use std::time::Duration;

use rtos_model::{Priority, Rtos, SchedAlg, TaskParams, TimeSlice};
use sldl_sim::sync::Mutex;
use sldl_sim::{Child, SimTime, Simulation, TraceConfig};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// Spawns a simple aperiodic task running `work` microseconds, logging
/// completion.
fn spawn_worker(
    sim: &mut Simulation,
    os: &Rtos,
    name: &'static str,
    prio: u32,
    work: u64,
    log: &Arc<Mutex<Vec<(String, u64)>>>,
) {
    let os = os.clone();
    let log = Arc::clone(log);
    sim.spawn(Child::new(name, move |ctx| {
        let me = os.task_create(&TaskParams::aperiodic(name, Priority(prio)));
        os.task_activate(ctx, me);
        os.time_wait(ctx, us(work));
        log.lock().push((name.to_string(), ctx.now().as_micros()));
        os.task_terminate(ctx);
    }));
}

#[test]
fn tasks_serialize_and_priority_orders_them() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let log = Arc::new(Mutex::new(Vec::new()));
    spawn_worker(&mut sim, &os, "lo", 5, 100, &log);
    spawn_worker(&mut sim, &os, "hi", 1, 100, &log);
    spawn_worker(&mut sim, &os, "mid", 3, 100, &log);
    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    // Serialized total, ordered high → mid → low.
    assert_eq!(report.end_time, SimTime::from_micros(300));
    assert_eq!(
        *log.lock(),
        vec![
            ("hi".to_string(), 100),
            ("mid".to_string(), 200),
            ("lo".to_string(), 300)
        ]
    );
}

#[test]
fn fifo_runs_in_arrival_order_regardless_of_priority() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::Fifo);
    let log = Arc::new(Mutex::new(Vec::new()));
    spawn_worker(&mut sim, &os, "first-low", 9, 50, &log);
    spawn_worker(&mut sim, &os, "second-high", 0, 50, &log);
    sim.run().unwrap();
    assert_eq!(log.lock()[0].0, "first-low");
    assert_eq!(log.lock()[1].0, "second-high");
}

#[test]
fn context_switch_count_single_task_is_zero() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let log = Arc::new(Mutex::new(Vec::new()));
    spawn_worker(&mut sim, &os, "only", 1, 500, &log);
    sim.run().unwrap();
    assert_eq!(os.metrics().context_switches, 0);
}

#[test]
fn interrupt_wakes_high_priority_task_preemption_delayed_to_step_end() {
    // The paper's key semantics (Fig. 8(b), t4 → t4'): an interrupt at t4
    // wakes the high-priority task, but the switch happens only when the
    // running task's current discrete delay step (d6) ends.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let irq = os.event_new();
    let log = Arc::new(Mutex::new(Vec::new()));

    // High-priority task: waits for the interrupt, then runs 100us.
    let os_hi = os.clone();
    let log_hi = Arc::clone(&log);
    sim.spawn(Child::new("hi", move |ctx| {
        let me = os_hi.task_create(&TaskParams::aperiodic("hi", Priority(1)));
        os_hi.task_activate(ctx, me);
        os_hi.event_wait(ctx, irq);
        log_hi.lock().push(("hi-start", ctx.now().as_micros()));
        os_hi.time_wait(ctx, us(100));
        log_hi.lock().push(("hi-end", ctx.now().as_micros()));
        os_hi.task_terminate(ctx);
    }));

    // Low-priority task: two 300us delay steps.
    let os_lo = os.clone();
    let log_lo = Arc::clone(&log);
    sim.spawn(Child::new("lo", move |ctx| {
        let me = os_lo.task_create(&TaskParams::aperiodic("lo", Priority(5)));
        os_lo.task_activate(ctx, me);
        os_lo.time_wait(ctx, us(300));
        log_lo.lock().push(("lo-step1", ctx.now().as_micros()));
        os_lo.time_wait(ctx, us(300));
        log_lo.lock().push(("lo-step2", ctx.now().as_micros()));
        os_lo.task_terminate(ctx);
    }));

    // ISR: fires at t = 400us, in the middle of lo's second step.
    let os_isr = os.clone();
    sim.spawn(Child::new("isr", move |ctx| {
        ctx.waitfor(us(400));
        os_isr.event_notify(ctx, irq);
        os_isr.interrupt_return(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    let log = log.lock().clone();
    // lo's second step completes at 600 (not preempted mid-step), THEN hi
    // runs 100us (600..700), then lo logs step2 completion... wait: lo's
    // step2 delay already elapsed, so lo logs at its preemption point
    // *after* hi runs.
    assert!(log.contains(&("lo-step1", 300)));
    assert!(log.contains(&("hi-start", 600)));
    assert!(log.contains(&("hi-end", 700)));
    assert!(log.contains(&("lo-step2", 700)));
    // Exactly 3 context switches: hi→lo at 0 (hi blocks on the event),
    // lo→hi at 600, and hi→lo at 700.
    assert_eq!(os.metrics().context_switches, 3);
}

#[test]
fn quantum_slicing_preempts_within_a_delay() {
    // Same scenario as above, but with a 50us slice: the high-priority task
    // starts at the first slice boundary after the interrupt (400 → 400us
    // exactly, since 400 is a multiple of 50).
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    os.set_time_slice(TimeSlice::Quantum(us(50)));
    let irq = os.event_new();
    let log = Arc::new(Mutex::new(Vec::new()));

    let os_hi = os.clone();
    let log_hi = Arc::clone(&log);
    sim.spawn(Child::new("hi", move |ctx| {
        let me = os_hi.task_create(&TaskParams::aperiodic("hi", Priority(1)));
        os_hi.task_activate(ctx, me);
        os_hi.event_wait(ctx, irq);
        log_hi.lock().push(("hi-start", ctx.now().as_micros()));
        os_hi.time_wait(ctx, us(100));
        os_hi.task_terminate(ctx);
    }));

    let os_lo = os.clone();
    let log_lo = Arc::clone(&log);
    sim.spawn(Child::new("lo", move |ctx| {
        let me = os_lo.task_create(&TaskParams::aperiodic("lo", Priority(5)));
        os_lo.task_activate(ctx, me);
        os_lo.time_wait(ctx, us(600));
        log_lo.lock().push(("lo-end", ctx.now().as_micros()));
        os_lo.task_terminate(ctx);
    }));

    let os_isr = os.clone();
    sim.spawn(Child::new("isr", move |ctx| {
        ctx.waitfor(us(425));
        os_isr.event_notify(ctx, irq);
        os_isr.interrupt_return(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    let log = log.lock().clone();
    // Interrupt at 425; next slice boundary is 450 → hi runs 450..550;
    // lo retains its remaining 150us (450 of 600 consumed) and finishes at
    // 550 + 150 = 700.
    assert!(log.contains(&("hi-start", 450)), "log: {log:?}");
    assert!(log.contains(&("lo-end", 700)), "log: {log:?}");
}

#[test]
fn round_robin_rotates_on_quantum() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::RoundRobin { quantum: us(100) });
    os.set_time_slice(TimeSlice::Quantum(us(100)));
    let log = Arc::new(Mutex::new(Vec::new()));
    spawn_worker(&mut sim, &os, "a", 1, 200, &log);
    spawn_worker(&mut sim, &os, "b", 1, 200, &log);
    let report = sim.run().unwrap();
    assert_eq!(report.end_time, SimTime::from_micros(400));
    // Interleaved: a runs 0-100, b 100-200, a 200-300, b 300-400.
    let log = log.lock().clone();
    assert_eq!(log[0], ("a".to_string(), 300));
    assert_eq!(log[1], ("b".to_string(), 400));
    assert!(os.metrics().context_switches >= 3);
}

#[test]
fn cooperative_priority_never_preempts() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityCooperative);
    let irq = os.event_new();
    let log = Arc::new(Mutex::new(Vec::new()));

    let os_hi = os.clone();
    let log_hi = Arc::clone(&log);
    sim.spawn(Child::new("hi", move |ctx| {
        let me = os_hi.task_create(&TaskParams::aperiodic("hi", Priority(0)));
        os_hi.task_activate(ctx, me);
        os_hi.event_wait(ctx, irq);
        log_hi.lock().push(("hi", ctx.now().as_micros()));
        os_hi.task_terminate(ctx);
    }));
    let os_lo = os.clone();
    let log_lo = Arc::clone(&log);
    sim.spawn(Child::new("lo", move |ctx| {
        let me = os_lo.task_create(&TaskParams::aperiodic("lo", Priority(9)));
        os_lo.task_activate(ctx, me);
        // Two steps: even though hi becomes ready at 50, lo keeps the CPU
        // through both steps (no preemption between them).
        os_lo.time_wait(ctx, us(100));
        os_lo.time_wait(ctx, us(100));
        log_lo.lock().push(("lo", ctx.now().as_micros()));
        os_lo.task_terminate(ctx);
    }));
    let os_isr = os.clone();
    sim.spawn(Child::new("isr", move |ctx| {
        ctx.waitfor(us(50));
        os_isr.event_notify(ctx, irq);
        os_isr.interrupt_return(ctx);
    }));

    sim.run().unwrap();
    let log = log.lock().clone();
    assert_eq!(log, vec![("lo", 200), ("hi", 200)]);
}

#[test]
fn edf_prefers_earliest_deadline() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::Edf);
    let log = Arc::new(Mutex::new(Vec::new()));

    for (name, deadline, work) in [("late", 10_000u64, 100u64), ("soon", 500, 100)] {
        let os = os.clone();
        let log = Arc::clone(&log);
        sim.spawn(Child::new(name, move |ctx| {
            let mut p = TaskParams::aperiodic(name, Priority(5));
            p.deadline(us(deadline));
            let me = os.task_create(&p);
            os.task_activate(ctx, me);
            os.time_wait(ctx, us(work));
            log.lock().push((name.to_string(), ctx.now().as_micros()));
            os.task_terminate(ctx);
        }));
    }
    sim.run().unwrap();
    let log = log.lock().clone();
    assert_eq!(log[0].0, "soon");
    assert_eq!(log[1].0, "late");
}

#[test]
fn rms_prefers_shorter_period() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::Rms);
    let order = Arc::new(Mutex::new(Vec::new()));

    for (name, period_us, work) in [("slow", 50_000u64, 200u64), ("fast", 10_000, 200)] {
        let os = os.clone();
        let order = Arc::clone(&order);
        sim.spawn(Child::new(name, move |ctx| {
            let me = os.task_create(&TaskParams::periodic(name, us(period_us)));
            os.task_activate(ctx, me);
            for _ in 0..2 {
                os.time_wait(ctx, us(work));
                order.lock().push((name, ctx.now().as_micros()));
                let _ = os.task_endcycle(ctx); // Count policy: always Continue
            }
            os.task_terminate(ctx);
        }));
    }
    sim.run().unwrap();
    let order = order.lock().clone();
    // First cycle at t=0: fast (period 10ms) beats slow (50ms).
    assert_eq!(order[0], ("fast", 200));
    assert_eq!(order[1], ("slow", 400));
    // Second releases: fast at 10ms, slow at 50ms.
    assert_eq!(order[2], ("fast", 10_200));
    assert_eq!(order[3], ("slow", 50_200));
}

#[test]
fn periodic_task_records_response_times_and_meets_deadlines() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::Rms);
    let os2 = os.clone();
    sim.spawn(Child::new("periodic", move |ctx| {
        let mut p = TaskParams::periodic("periodic", us(1_000));
        p.wcet(us(300));
        let me = os2.task_create(&p);
        os2.task_activate(ctx, me);
        for _ in 0..5 {
            os2.time_wait(ctx, us(300));
            let _ = os2.task_endcycle(ctx); // Count policy: always Continue
        }
        os2.task_terminate(ctx);
    }));
    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    let m = os.metrics_at(report.end_time);
    let stats = &m.tasks[0];
    assert_eq!(stats.cycle_response_times.len(), 5);
    assert!(stats.cycle_response_times.iter().all(|&r| r == us(300)));
    assert_eq!(stats.deadline_misses, 0);
    assert!((os.planned_utilization() - 0.3).abs() < 1e-9);
}

#[test]
fn overrunning_periodic_task_misses_deadlines() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::Rms);
    let os2 = os.clone();
    sim.spawn(Child::new("overrun", move |ctx| {
        let me = os2.task_create(&TaskParams::periodic("overrun", us(100)));
        os2.task_activate(ctx, me);
        for _ in 0..3 {
            os2.time_wait(ctx, us(150)); // longer than the period
            let _ = os2.task_endcycle(ctx); // Count policy: always Continue
        }
        os2.task_terminate(ctx);
    }));
    sim.run().unwrap();
    let m = os.metrics();
    assert_eq!(m.tasks[0].deadline_misses, 3);
}

#[test]
fn task_sleep_and_remote_activate() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let log = Arc::new(Mutex::new(Vec::new()));
    let sleeper_tid = Arc::new(Mutex::new(None));

    let os_s = os.clone();
    let log_s = Arc::clone(&log);
    let tid_cell = Arc::clone(&sleeper_tid);
    sim.spawn(Child::new("sleeper", move |ctx| {
        let me = os_s.task_create(&TaskParams::aperiodic("sleeper", Priority(1)));
        *tid_cell.lock() = Some(me);
        os_s.task_activate(ctx, me);
        log_s.lock().push(("pre-sleep", ctx.now().as_micros()));
        os_s.task_sleep(ctx);
        log_s.lock().push(("post-sleep", ctx.now().as_micros()));
        os_s.task_terminate(ctx);
    }));

    let os_w = os.clone();
    let tid_cell = Arc::clone(&sleeper_tid);
    sim.spawn(Child::new("waker", move |ctx| {
        let me = os_w.task_create(&TaskParams::aperiodic("waker", Priority(5)));
        os_w.task_activate(ctx, me);
        os_w.time_wait(ctx, us(100));
        let tid = tid_cell.lock().expect("sleeper created");
        os_w.task_activate(ctx, tid); // resume; sleeper has higher priority
        os_w.time_wait(ctx, us(50));
        os_w.task_terminate(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    let log = log.lock().clone();
    assert_eq!(log[0], ("pre-sleep", 0));
    // Woken at 100; preempts the waker right at the activate call.
    assert_eq!(log[1], ("post-sleep", 100));
}

#[test]
fn task_kill_removes_blocked_task() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let e = os.event_new();
    let victim_tid = Arc::new(Mutex::new(None));

    let os_v = os.clone();
    let tid_cell = Arc::clone(&victim_tid);
    sim.spawn(Child::new("victim", move |ctx| {
        let me = os_v.task_create(&TaskParams::aperiodic("victim", Priority(1)));
        *tid_cell.lock() = Some(me);
        os_v.task_activate(ctx, me);
        os_v.event_wait(ctx, e); // never notified
        unreachable!("victim must not resume");
    }));

    let os_k = os.clone();
    let tid_cell = Arc::clone(&victim_tid);
    sim.spawn(Child::new("killer", move |ctx| {
        let me = os_k.task_create(&TaskParams::aperiodic("killer", Priority(5)));
        os_k.task_activate(ctx, me);
        os_k.time_wait(ctx, us(10));
        os_k.task_kill(ctx, tid_cell.lock().expect("victim created"));
        os_k.time_wait(ctx, us(10));
        os_k.task_terminate(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty(), "blocked: {:?}", report.blocked);
    let tid = victim_tid.lock().expect("victim created");
    assert_eq!(os.task_state(tid), rtos_model::TaskState::Terminated);
}

#[test]
fn par_start_end_forks_child_tasks() {
    // The paper's Figure 6 pattern: a parent task forks two child tasks.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let log = Arc::new(Mutex::new(Vec::new()));

    let os_p = os.clone();
    let log_p = Arc::clone(&log);
    sim.spawn(Child::new("task_pe", move |ctx| {
        let me = os_p.task_create(&TaskParams::aperiodic("task_pe", Priority(2)));
        os_p.task_activate(ctx, me);
        os_p.time_wait(ctx, us(100)); // B1
        let b2 = os_p.task_create(&TaskParams::aperiodic("task_b2", Priority(3)));
        let b3 = os_p.task_create(&TaskParams::aperiodic("task_b3", Priority(1)));
        os_p.par_start(ctx);
        let os_b2 = os_p.clone();
        let os_b3 = os_p.clone();
        let log_b2 = Arc::clone(&log_p);
        let log_b3 = Arc::clone(&log_p);
        ctx.par(vec![
            Child::new("b2", move |ctx| {
                os_b2.task_activate(ctx, b2);
                os_b2.time_wait(ctx, us(200));
                log_b2.lock().push(("b2-done", ctx.now().as_micros()));
                os_b2.task_terminate(ctx);
            }),
            Child::new("b3", move |ctx| {
                os_b3.task_activate(ctx, b3);
                os_b3.time_wait(ctx, us(150));
                log_b3.lock().push(("b3-done", ctx.now().as_micros()));
                os_b3.task_terminate(ctx);
            }),
        ]);
        os_p.par_end(ctx);
        log_p.lock().push(("parent-done", ctx.now().as_micros()));
        os_p.task_terminate(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    let log = log.lock().clone();
    // b3 has higher priority: runs 100..250; b2 runs 250..450.
    assert_eq!(log[0], ("b3-done", 250));
    assert_eq!(log[1], ("b2-done", 450));
    assert_eq!(log[2], ("parent-done", 450));
}

#[test]
fn trace_records_task_spans_without_overlap() {
    let mut sim = Simulation::builder().trace(TraceConfig::default()).build();
    let trace = sim.trace_handle().expect("trace configured");
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    os.attach_trace(trace.clone());
    let log = Arc::new(Mutex::new(Vec::new()));
    spawn_worker(&mut sim, &os, "t1", 1, 100, &log);
    spawn_worker(&mut sim, &os, "t2", 2, 100, &log);
    sim.run().unwrap();
    let segs = sldl_sim::trace::segments(&trace.snapshot());
    let t1 = &segs["t1"];
    let t2 = &segs["t2"];
    assert_eq!(sldl_sim::trace::overlap(t1, t2), Duration::ZERO);
    assert_eq!(t1[0].duration() + t2[0].duration(), us(200));
}

#[test]
fn metrics_busy_time_and_utilization() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let log = Arc::new(Mutex::new(Vec::new()));
    spawn_worker(&mut sim, &os, "t", 1, 400, &log);
    let report = sim.run().unwrap();
    let m = os.metrics_at(report.end_time);
    assert_eq!(m.cpu_busy, us(400));
    assert!((m.utilization() - 1.0).abs() < 1e-9);
    assert_eq!(m.tasks[0].busy, us(400));
    assert_eq!(m.tasks[0].dispatches, 1);
}

#[test]
fn event_notify_by_task_preempts_notifier() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let e = os.event_new();
    let log = Arc::new(Mutex::new(Vec::new()));

    let os_hi = os.clone();
    let log_hi = Arc::clone(&log);
    sim.spawn(Child::new("hi", move |ctx| {
        let me = os_hi.task_create(&TaskParams::aperiodic("hi", Priority(1)));
        os_hi.task_activate(ctx, me);
        os_hi.event_wait(ctx, e);
        os_hi.time_wait(ctx, us(50));
        log_hi.lock().push(("hi-done", ctx.now().as_micros()));
        os_hi.task_terminate(ctx);
    }));
    let os_lo = os.clone();
    let log_lo = Arc::clone(&log);
    sim.spawn(Child::new("lo", move |ctx| {
        let me = os_lo.task_create(&TaskParams::aperiodic("lo", Priority(5)));
        os_lo.task_activate(ctx, me);
        os_lo.time_wait(ctx, us(100));
        os_lo.event_notify(ctx, e); // wakes hi → immediate preemption here
        log_lo
            .lock()
            .push(("lo-after-notify", ctx.now().as_micros()));
        os_lo.task_terminate(ctx);
    }));

    sim.run().unwrap();
    let log = log.lock().clone();
    // hi runs 100..150 before lo continues past its notify call.
    assert_eq!(log[0], ("hi-done", 150));
    assert_eq!(log[1], ("lo-after-notify", 150));
}

#[test]
fn rtos_as_sync_layer_runs_sldl_channels() {
    // The Figure 7 refinement: the *same* Queue channel code, but its
    // internal events are RTOS events.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let q: sldl_sim::Queue<u32, Rtos> = sldl_sim::Queue::bounded(2, os.clone());
    let got = Arc::new(Mutex::new(Vec::new()));

    let os_p = os.clone();
    let q_p = q.clone();
    sim.spawn(Child::new("producer", move |ctx| {
        let me = os_p.task_create(&TaskParams::aperiodic("producer", Priority(2)));
        os_p.task_activate(ctx, me);
        for i in 0..5 {
            os_p.time_wait(ctx, us(10));
            q_p.send(ctx, i);
        }
        os_p.task_terminate(ctx);
    }));
    let os_c = os.clone();
    let got_c = Arc::clone(&got);
    sim.spawn(Child::new("consumer", move |ctx| {
        let me = os_c.task_create(&TaskParams::aperiodic("consumer", Priority(1)));
        os_c.task_activate(ctx, me);
        for _ in 0..5 {
            let v = q.recv(ctx);
            got_c.lock().push(v);
        }
        os_c.task_terminate(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    assert_eq!(*got.lock(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn dispatch_latency_recorded_for_delayed_dispatch() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let log = Arc::new(Mutex::new(Vec::new()));
    spawn_worker(&mut sim, &os, "hog", 1, 200, &log);
    spawn_worker(&mut sim, &os, "waiter", 5, 50, &log);
    sim.run().unwrap();
    let m = os.metrics();
    let waiter = m.tasks.iter().find(|t| t.name == "waiter").unwrap();
    // Ready at 0, dispatched at 200.
    assert_eq!(waiter.dispatch_latencies, vec![us(200)]);
}

#[test]
fn two_pes_schedule_independently() {
    // One RTOS instance per processing element: tasks on different PEs run
    // truly in parallel; tasks on the same PE serialize.
    let mut sim = Simulation::new();
    let os0 = Rtos::new("pe0", sim.sync_layer());
    let os1 = Rtos::new("pe1", sim.sync_layer());
    os0.start(SchedAlg::PriorityPreemptive);
    os1.start(SchedAlg::PriorityPreemptive);
    let log = Arc::new(Mutex::new(Vec::new()));
    spawn_worker(&mut sim, &os0, "pe0-a", 1, 100, &log);
    spawn_worker(&mut sim, &os0, "pe0-b", 2, 100, &log);
    spawn_worker(&mut sim, &os1, "pe1-a", 1, 100, &log);
    let report = sim.run().unwrap();
    // pe0 serializes its two tasks (200us); pe1 finishes at 100us.
    assert_eq!(report.end_time, SimTime::from_micros(200));
    let log = log.lock().clone();
    assert!(log.contains(&("pe1-a".to_string(), 100)));
    assert!(log.contains(&("pe0-b".to_string(), 200)));
}

#[test]
fn context_switch_cost_extends_makespan() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    os.set_context_switch_cost(us(10));
    let log = Arc::new(Mutex::new(Vec::new()));
    spawn_worker(&mut sim, &os, "hi", 1, 100, &log);
    spawn_worker(&mut sim, &os, "lo", 5, 100, &log);
    let report = sim.run().unwrap();
    // hi runs first (no prior dispatch → no switch), then one switch to lo
    // costing 10us: total 100 + 10 + 100.
    assert_eq!(report.end_time, SimTime::from_micros(210));
    assert_eq!(os.metrics().context_switches, 1);
    let log = log.lock().clone();
    assert_eq!(log[0], ("hi".to_string(), 100));
    assert_eq!(log[1], ("lo".to_string(), 210));
}

#[test]
fn zero_switch_cost_is_default() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let log = Arc::new(Mutex::new(Vec::new()));
    spawn_worker(&mut sim, &os, "a", 1, 50, &log);
    spawn_worker(&mut sim, &os, "b", 2, 50, &log);
    let report = sim.run().unwrap();
    assert_eq!(report.end_time, SimTime::from_micros(100));
}
