//! Priority-inversion tests for the RTOS mutex: the classic H/M/L scenario
//! (the Mars Pathfinder failure mode) with and without priority
//! inheritance, plus basic mutex semantics.

use std::sync::Arc;
use std::time::Duration;

use rtos_model::{InheritancePolicy, Priority, Rtos, RtosMutex, SchedAlg, TaskParams, TimeSlice};
use sldl_sim::sync::Mutex;
use sldl_sim::{Child, Simulation};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// The classic scenario:
/// * L (low) takes the mutex at t=0 and holds it for 100 µs of work;
/// * H (high) arrives at t=20 and blocks on the mutex;
/// * M (medium) arrives at t=20 with 500 µs of CPU-bound work.
///
/// Without inheritance, M preempts L, so H waits for *all* of M's work.
/// With inheritance, L runs at H's priority until it releases.
///
/// Returns H's completion time in microseconds.
fn run_inversion(policy: InheritancePolicy) -> u64 {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    // Fine slicing so preemption decisions are prompt.
    os.set_time_slice(TimeSlice::Quantum(us(10)));
    let m = RtosMutex::new(os.clone(), policy);
    let h_done = Arc::new(Mutex::new(0u64));

    // L: locks immediately, works 100 µs inside the critical section.
    let os_l = os.clone();
    let m_l = m.clone();
    sim.spawn(Child::new("low", move |ctx| {
        let me = os_l.task_create(&TaskParams::aperiodic("low", Priority(9)));
        os_l.task_activate(ctx, me);
        m_l.lock(ctx);
        os_l.time_wait(ctx, us(100));
        m_l.unlock(ctx);
        os_l.task_terminate(ctx);
    }));

    // H: arrives at 20 µs, needs the mutex for 50 µs of work.
    let os_h = os.clone();
    let m_h = m.clone();
    let done = Arc::clone(&h_done);
    sim.spawn(Child::new("high", move |ctx| {
        let me = os_h.task_create(&TaskParams::aperiodic("high", Priority(1)));
        os_h.task_activate(ctx, me);
        os_h.time_wait(ctx, us(20)); // arrival offset
        m_h.lock(ctx);
        os_h.time_wait(ctx, us(50));
        m_h.unlock(ctx);
        *done.lock() = ctx.now().as_micros();
        os_h.task_terminate(ctx);
    }));

    // M: arrives at 20 µs, hogs the CPU for 500 µs, never touches the mutex.
    let os_m = os.clone();
    sim.spawn(Child::new("medium", move |ctx| {
        let me = os_m.task_create(&TaskParams::aperiodic("medium", Priority(5)));
        os_m.task_activate(ctx, me);
        os_m.time_wait(ctx, us(20));
        os_m.time_wait(ctx, us(500));
        os_m.task_terminate(ctx);
    }));

    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty(), "{:?}", report.blocked);
    let done = *h_done.lock();
    done
}

#[test]
fn priority_inversion_without_inheritance_is_unbounded_by_m() {
    let h_done = run_inversion(InheritancePolicy::None);
    // H must wait for M's entire 500 µs: completion well after 570 µs.
    assert!(h_done >= 570, "H completed at {h_done} µs");
}

#[test]
fn inheritance_bounds_inversion_to_the_critical_section() {
    let h_done = run_inversion(InheritancePolicy::Inherit);
    // L (boosted) finishes its 100 µs critical section, then H runs 50 µs:
    // H completes around 170 µs — long before M's 500 µs of work.
    assert!(h_done <= 200, "H completed at {h_done} µs");
}

#[test]
fn inheritance_strictly_improves_high_priority_latency() {
    let without = run_inversion(InheritancePolicy::None);
    let with = run_inversion(InheritancePolicy::Inherit);
    assert!(
        with + 300 <= without,
        "with={with} µs, without={without} µs"
    );
}

#[test]
fn mutex_provides_mutual_exclusion() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    os.set_time_slice(TimeSlice::Quantum(us(7)));
    let m = RtosMutex::new(os.clone(), InheritancePolicy::Inherit);
    let in_section = Arc::new(Mutex::new((0u32, 0u32))); // (current, max seen)

    for i in 0..4u32 {
        let os = os.clone();
        let m = m.clone();
        let counter = Arc::clone(&in_section);
        sim.spawn(Child::new(format!("t{i}"), move |ctx| {
            let me = os.task_create(&TaskParams::aperiodic(format!("t{i}"), Priority(i)));
            os.task_activate(ctx, me);
            for _ in 0..3 {
                m.lock(ctx);
                {
                    let mut c = counter.lock();
                    c.0 += 1;
                    c.1 = c.1.max(c.0);
                }
                os.time_wait(ctx, us(30));
                counter.lock().0 -= 1;
                m.unlock(ctx);
                os.time_wait(ctx, us(10));
            }
            os.task_terminate(ctx);
        }));
    }
    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty());
    assert_eq!(in_section.lock().1, 1, "critical sections overlapped");
}

#[test]
fn recursive_lock_by_owner() {
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let m = RtosMutex::new(os.clone(), InheritancePolicy::Inherit);
    let os2 = os.clone();
    sim.spawn(Child::new("t", move |ctx| {
        let me = os2.task_create(&TaskParams::aperiodic("t", Priority(1)));
        os2.task_activate(ctx, me);
        m.lock(ctx);
        m.lock(ctx); // recursive
        assert!(m.try_lock(ctx));
        m.unlock(ctx);
        m.unlock(ctx);
        m.unlock(ctx);
        os2.task_terminate(ctx);
    }));
    sim.run().unwrap();
}

#[test]
fn try_lock_fails_when_contended() {
    // The holder takes the mutex and then blocks on an event (DMA wait)
    // *inside* the critical section; the prober runs meanwhile and must
    // see the mutex taken.
    let mut sim = Simulation::new();
    let os = Rtos::new("pe", sim.sync_layer());
    os.start(SchedAlg::PriorityPreemptive);
    let m = RtosMutex::new(os.clone(), InheritancePolicy::None);
    let dma_done = os.event_new();
    let outcome = Arc::new(Mutex::new(None));

    let os_a = os.clone();
    let m_a = m.clone();
    sim.spawn(Child::new("holder", move |ctx| {
        let me = os_a.task_create(&TaskParams::aperiodic("holder", Priority(1)));
        os_a.task_activate(ctx, me);
        m_a.lock(ctx);
        os_a.event_wait(ctx, dma_done); // blocks while holding the mutex
        m_a.unlock(ctx);
        os_a.task_terminate(ctx);
    }));
    let os_b = os.clone();
    let o = Arc::clone(&outcome);
    sim.spawn(Child::new("prober", move |ctx| {
        let me = os_b.task_create(&TaskParams::aperiodic("prober", Priority(2)));
        os_b.task_activate(ctx, me);
        os_b.time_wait(ctx, us(10));
        *o.lock() = Some(m.try_lock(ctx)); // holder still owns it
        os_b.task_terminate(ctx);
    }));
    let os_isr = os.clone();
    sim.spawn(Child::new("dma_isr", move |ctx| {
        ctx.waitfor(us(50));
        os_isr.event_notify(ctx, dma_done);
        os_isr.interrupt_return(ctx);
    }));
    let report = sim.run().unwrap();
    assert!(report.blocked.is_empty(), "{:?}", report.blocked);
    assert_eq!(*outcome.lock(), Some(false));
}
