//! Common result types for executing specification models.

use std::collections::HashMap;
use std::time::Duration;

use rtos_model::MetricsSnapshot;
use sldl_sim::bus::BusStats;
use sldl_sim::trace::Segment;
use sldl_sim::{Record, Report, RunError, SimTime};

use crate::spec::ValidateSpecError;

/// Options for executing a model.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunConfig {
    /// Stop the simulation at this time (`None` = run to quiescence).
    pub run_until: Option<SimTime>,
}

/// Per-PE scheduling metrics of an architecture-model run.
#[derive(Debug, Clone)]
pub struct PeMetrics {
    /// PE name.
    pub pe: String,
    /// RTOS metrics of that PE's instance.
    pub metrics: MetricsSnapshot,
}

/// Cumulative grant counters of one cross-PE channel (which side arrived
/// second and was granted by an already-waiting partner).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelFairness {
    /// Channel name.
    pub channel: String,
    /// Grants handed to blocked senders (receiver arrived second).
    pub grants_to_senders: u64,
    /// Grants handed to blocked receivers (sender arrived second).
    pub grants_to_receivers: u64,
}

/// Result of executing a model (unscheduled or architecture).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ModelRun {
    /// Kernel run report (end time, blocked processes).
    pub report: Report,
    /// All trace records collected during the run.
    pub records: Vec<Record>,
    /// Per-PE RTOS metrics (empty for the unscheduled model).
    pub pe_metrics: Vec<PeMetrics>,
    /// Per-bus transaction statistics, in [`BusMap`](crate::BusMap) bus
    /// order (empty without a communication architecture).
    pub bus_stats: Vec<BusStats>,
    /// Cross-PE channel fairness counters, in channel order (empty for
    /// single-PE and unscheduled models).
    pub channel_fairness: Vec<ChannelFairness>,
}

impl ModelRun {
    /// Simulated end time of the run.
    #[must_use]
    pub fn end_time(&self) -> SimTime {
        self.report.end_time
    }

    /// Execution segments per track (behavior/task name).
    #[must_use]
    pub fn segments(&self) -> HashMap<String, Vec<Segment>> {
        sldl_sim::trace::segments(&self.records)
    }

    /// Total context switches across all PEs (0 for the unscheduled model,
    /// matching the paper's Table 1).
    #[must_use]
    pub fn context_switches(&self) -> u64 {
        self.pe_metrics
            .iter()
            .map(|p| p.metrics.context_switches)
            .sum()
    }

    /// Total time during which segments of tracks `a` and `b` overlap —
    /// nonzero proves truly parallel execution (unscheduled model), zero is
    /// required after refinement onto one PE.
    #[must_use]
    pub fn overlap(&self, a: &str, b: &str) -> Duration {
        let segs = self.segments();
        match (segs.get(a), segs.get(b)) {
            (Some(x), Some(y)) => sldl_sim::trace::overlap(x, y),
            _ => Duration::ZERO,
        }
    }
}

/// Error from executing a specification model.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunModelError {
    /// The spec failed validation.
    Invalid(ValidateSpecError),
    /// The simulation failed (a process panicked).
    Sim(RunError),
}

impl core::fmt::Display for RunModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunModelError::Invalid(e) => write!(f, "invalid spec: {e}"),
            RunModelError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for RunModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunModelError::Invalid(e) => Some(e),
            RunModelError::Sim(e) => Some(e),
        }
    }
}

impl From<ValidateSpecError> for RunModelError {
    fn from(e: ValidateSpecError) -> Self {
        RunModelError::Invalid(e)
    }
}

impl From<RunError> for RunModelError {
    fn from(e: RunError) -> Self {
        RunModelError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sldl_sim::RecordKind;

    #[test]
    fn model_run_accessors() {
        let run = ModelRun {
            report: Report {
                end_time: SimTime::from_micros(10),
                blocked: vec![],
                faults: vec![],
                chaos: vec![],
                kernel: sldl_sim::KernelStats::default(),
            },
            records: vec![
                Record {
                    time: SimTime::ZERO,
                    kind: RecordKind::SpanBegin {
                        track: "a".into(),
                        label: "x".into(),
                    },
                },
                Record {
                    time: SimTime::from_micros(4),
                    kind: RecordKind::SpanEnd { track: "a".into() },
                },
            ],
            pe_metrics: vec![],
            bus_stats: vec![],
            channel_fairness: vec![],
        };
        assert_eq!(run.end_time(), SimTime::from_micros(10));
        assert_eq!(run.segments()["a"].len(), 1);
        assert_eq!(run.context_switches(), 0);
        assert_eq!(run.overlap("a", "missing"), Duration::ZERO);
    }

    #[test]
    fn error_display() {
        let e = RunModelError::Invalid(ValidateSpecError::UnknownChannel(3));
        assert_eq!(e.to_string(), "invalid spec: unknown channel index 3");
    }
}
