//! The dynamic-scheduling refinement: executes a [`SystemSpec`] as an
//! *architecture model* (paper Fig. 3(b)).
//!
//! This is the automated counterpart of the paper's manual refinement steps
//! (§4.2) — the paper notes "we have developed a tool that performs the
//! refinement of unscheduled specification models into RTOS-based
//! architecture models automatically"; this module is that tool:
//!
//! * one [`Rtos`] instance is created per PE and every `par` branch becomes
//!   a task (`task_create` / `task_activate` / `task_terminate`, with
//!   `par_start`/`par_end` around the fork — Fig. 6);
//! * `Compute` delays become `time_wait` calls (Fig. 5);
//! * channels are re-layered onto RTOS events (Fig. 7), with cross-PE
//!   rendezvous mapped to [`CrossRendezvous`];
//! * interrupt sources become ISR processes that release a semaphore and
//!   call `interrupt_return` (Fig. 3(b)).

use std::collections::HashMap;
use std::sync::Arc;

use rtos_model::{Priority, Rtos, SchedAlg, TaskId, TaskParams, TimeSlice};
use sldl_sim::{Child, Handshake, ProcCtx, RecordKind, Semaphore, Simulation, TraceConfig};

use crate::comm::{BusChannel, BusMap, SharedBus};
use crate::cross::CrossRendezvous;
use crate::run::{ChannelFairness, ModelRun, PeMetrics, RunConfig, RunModelError};
use crate::spec::{Action, Behavior, ChannelKind, SystemSpec};

enum ArchChan {
    Rendezvous(Handshake<Rtos>),
    Cross(CrossRendezvous),
    Bus(BusChannel<()>),
    Sem(Semaphore<Rtos>),
}

impl ArchChan {
    fn send(&self, ctx: &ProcCtx) {
        match self {
            ArchChan::Rendezvous(h) => h.send(ctx),
            ArchChan::Cross(c) => c.send(ctx),
            ArchChan::Bus(b) => b.send(ctx, ()),
            ArchChan::Sem(_) => panic!("send on semaphore channel"),
        }
    }

    fn recv(&self, ctx: &ProcCtx) {
        match self {
            ArchChan::Rendezvous(h) => h.recv(ctx),
            ArchChan::Cross(c) => c.recv(ctx),
            ArchChan::Bus(b) => {
                b.recv(ctx);
            }
            ArchChan::Sem(_) => panic!("recv on semaphore channel"),
        }
    }

    fn sem(&self) -> &Semaphore<Rtos> {
        match self {
            ArchChan::Sem(s) => s,
            _ => panic!("semaphore operation on rendezvous channel"),
        }
    }
}

/// Per-channel usage sites discovered in the spec.
#[derive(Default, Clone)]
struct ChanUse {
    sender_pes: Vec<usize>,
    receiver_pes: Vec<usize>,
    acquirer_pes: Vec<usize>,
}

struct Env {
    os: Rtos,
    chans: Arc<Vec<ArchChan>>,
    priorities: HashMap<String, Priority>,
}

/// Executes `spec` as an RTOS-based architecture model under scheduling
/// algorithm `alg`, modeling preemption at granularity `slice`.
///
/// # Errors
///
/// Returns [`RunModelError::Invalid`] if the spec fails validation and
/// [`RunModelError::Sim`] if a process panics during simulation.
///
/// # Panics
///
/// Panics if a rendezvous channel has senders (or receivers) on more than
/// one PE, or a semaphore has acquirers on more than one PE — such specs
/// need an explicit communication architecture first.
pub fn run_architecture(
    spec: &SystemSpec,
    alg: SchedAlg,
    slice: TimeSlice,
    cfg: &RunConfig,
) -> Result<ModelRun, RunModelError> {
    run_architecture_inner(spec, alg, slice, std::time::Duration::ZERO, cfg, None)
}

/// [`run_architecture`] with an explicit communication architecture:
/// every cross-PE rendezvous assigned in `map` is lowered onto a timed,
/// arbitrated bus transaction ([`BusChannel`]); unassigned channels keep
/// the abstract [`CrossRendezvous`]. With [`BusMap::ideal`] — or with
/// every assigned bus configured zero-cost — the run is structurally
/// identical to [`run_architecture`].
///
/// # Errors
///
/// Returns [`RunModelError::Invalid`] if the spec fails validation and
/// [`RunModelError::Sim`] if a process panics during simulation.
pub fn run_architecture_with_comm(
    spec: &SystemSpec,
    alg: SchedAlg,
    slice: TimeSlice,
    cfg: &RunConfig,
    map: &BusMap,
) -> Result<ModelRun, RunModelError> {
    run_architecture_inner(spec, alg, slice, std::time::Duration::ZERO, cfg, Some(map))
}

/// [`run_architecture`] with a modeled kernel cost per context switch
/// (used by the exploration driver).
pub(crate) fn run_architecture_configured(
    spec: &SystemSpec,
    alg: SchedAlg,
    slice: TimeSlice,
    switch_cost: std::time::Duration,
) -> Result<ModelRun, RunModelError> {
    run_architecture_inner(spec, alg, slice, switch_cost, &RunConfig::default(), None)
}

fn run_architecture_inner(
    spec: &SystemSpec,
    alg: SchedAlg,
    slice: TimeSlice,
    switch_cost: std::time::Duration,
    cfg: &RunConfig,
    map: Option<&BusMap>,
) -> Result<ModelRun, RunModelError> {
    spec.validate()?;
    let mut sim = Simulation::builder().trace(TraceConfig::default()).build();
    let trace = sim.trace_handle().expect("trace configured");
    let layer = sim.sync_layer();

    // One RTOS instance per PE.
    let oses: Vec<Rtos> = spec
        .pes
        .iter()
        .map(|pe| {
            let os = Rtos::new(pe.name.clone(), layer.clone());
            os.start(alg);
            os.set_time_slice(slice);
            os.set_context_switch_cost(switch_cost);
            os.attach_trace(trace.clone());
            os
        })
        .collect();

    // Discover which PEs use each channel to place its refined instance.
    let mut uses = vec![ChanUse::default(); spec.channels.len()];
    for (pe_idx, pe) in spec.pes.iter().enumerate() {
        collect_uses(&pe.root, pe_idx, &mut uses);
    }

    // Instantiate the communication architecture's buses (if any).
    let buses: Vec<SharedBus> = map
        .map(|m| m.buses().iter().cloned().map(SharedBus::new).collect())
        .unwrap_or_default();

    let chans: Arc<Vec<ArchChan>> = Arc::new(
        spec.channels
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let u = &uses[i];
                match c.kind {
                    ChannelKind::Rendezvous => {
                        let s = unique_pe(&u.sender_pes, &c.name, "senders");
                        let r = unique_pe(&u.receiver_pes, &c.name, "receivers");
                        match (s, r) {
                            (Some(s), Some(r)) if s != r => {
                                match map.and_then(|m| m.binding(&c.name)) {
                                    Some(b) => ArchChan::Bus(BusChannel::new(
                                        &c.name,
                                        oses[s].clone(),
                                        oses[r].clone(),
                                        &buses[b.bus],
                                        b.bytes_per_msg,
                                        b.priority,
                                    )),
                                    None => ArchChan::Cross(CrossRendezvous::named(
                                        oses[s].clone(),
                                        oses[r].clone(),
                                        &c.name,
                                    )),
                                }
                            }
                            (sr, _) => {
                                let pe = sr.unwrap_or(0);
                                ArchChan::Rendezvous(Handshake::new(oses[pe].clone()))
                            }
                        }
                    }
                    ChannelKind::Semaphore { initial } => {
                        let pe = unique_pe(&u.acquirer_pes, &c.name, "acquirers").unwrap_or(0);
                        ArchChan::Sem(Semaphore::new(initial, oses[pe].clone()))
                    }
                }
            })
            .collect(),
    );

    // One main task per PE running the root behavior.
    for (pe_idx, pe) in spec.pes.iter().enumerate() {
        let env = Arc::new(Env {
            os: oses[pe_idx].clone(),
            chans: Arc::clone(&chans),
            priorities: pe.priorities.clone(),
        });
        let root = pe.root.clone();
        let main_name = format!("{}_main", pe.name);
        sim.spawn(Child::new(main_name.clone(), move |ctx| {
            // A periodic root becomes the PE's periodic main task.
            let task_name = match &root {
                Behavior::Periodic { name, .. } => name.clone(),
                _ => main_name.clone(),
            };
            let prio = priority_of(&env.priorities, &task_name);
            let me = env
                .os
                .task_create(&task_params_for(&root, &task_name, prio));
            env.os.task_activate(ctx, me);
            if exec(&root, ctx, &env, &task_name) {
                env.os.task_terminate(ctx);
            }
        }));
    }

    // Interrupt sources → ISR processes.
    for irq in &spec.interrupts {
        let chans = Arc::clone(&chans);
        let os = oses[irq.pe].clone();
        let name = irq.name.clone();
        let mut times = irq.fire_times.clone();
        times.sort();
        let target = irq.target;
        sim.spawn(Child::new(format!("isr_{name}"), move |ctx| {
            for t in times {
                let now = ctx.now();
                if t > now {
                    ctx.waitfor(t - now);
                }
                ctx.record(RecordKind::Marker {
                    track: name.clone(),
                    label: "interrupt".into(),
                });
                chans[target.0].sem().release(ctx);
                os.interrupt_return(ctx);
            }
        }));
    }

    let report = match cfg.run_until {
        Some(t) => sim.run_until(t)?,
        None => sim.run()?,
    };
    let end = report.end_time;
    // Cross-channel fairness counters, in channel order.
    let channel_fairness: Vec<ChannelFairness> = spec
        .channels
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let fairness = match &chans[i] {
                ArchChan::Cross(x) => x.fairness(),
                ArchChan::Bus(b) => b.fairness(),
                _ => return None,
            };
            Some(ChannelFairness {
                channel: c.name.clone(),
                grants_to_senders: fairness.grants_to_senders,
                grants_to_receivers: fairness.grants_to_receivers,
            })
        })
        .collect();
    Ok(ModelRun {
        report,
        records: trace.snapshot(),
        pe_metrics: spec
            .pes
            .iter()
            .zip(&oses)
            .map(|(pe, os)| PeMetrics {
                pe: pe.name.clone(),
                metrics: os.metrics_at(end),
            })
            .collect(),
        bus_stats: buses.iter().map(SharedBus::stats).collect(),
        channel_fairness,
    })
}

fn collect_uses(b: &Behavior, pe: usize, uses: &mut [ChanUse]) {
    match b {
        Behavior::Leaf { actions, .. } | Behavior::Periodic { actions, .. } => {
            for a in actions {
                match a {
                    Action::Send(c) => uses[c.0].sender_pes.push(pe),
                    Action::Recv(c) => uses[c.0].receiver_pes.push(pe),
                    Action::Acquire(c) => uses[c.0].acquirer_pes.push(pe),
                    // Releases may come from any PE or ISR context; computes
                    // touch no channel.
                    Action::Release(_) | Action::Compute { .. } => {}
                }
            }
        }
        Behavior::Seq(children) | Behavior::Par(children) => {
            for c in children {
                collect_uses(c, pe, uses);
            }
        }
    }
}

/// All users of one role must sit on a single PE; returns it.
fn unique_pe(pes: &[usize], chan: &str, role: &str) -> Option<usize> {
    let mut it = pes.iter().copied();
    let first = it.next()?;
    assert!(
        it.all(|p| p == first),
        "channel `{chan}` has {role} on multiple PEs; refine the communication architecture first"
    );
    Some(first)
}

fn priority_of(map: &HashMap<String, Priority>, name: &str) -> Priority {
    map.get(name).copied().unwrap_or(Priority::LOWEST)
}

/// Task parameters for a behavior placed at task position: periodic
/// behaviors become periodic RTOS tasks with their per-cycle compute as the
/// WCET annotation.
fn task_params_for(b: &Behavior, name: &str, prio: Priority) -> TaskParams {
    match b {
        Behavior::Periodic { period, cycles, .. } => {
            let mut p = TaskParams::periodic(name, *period);
            let per_cycle = if *cycles == 0 {
                std::time::Duration::ZERO
            } else {
                b.total_compute() / *cycles
            };
            p.priority(prio).wcet(per_cycle);
            p
        }
        _ => TaskParams::aperiodic(name, prio),
    }
}

/// Walks the behavior tree in task context. `path` provides unique names
/// for composite par branches. Returns `false` when the calling task was
/// killed by its deadline-miss policy (the caller must not touch the RTOS
/// for this task again, in particular not `task_terminate`).
fn exec(b: &Behavior, ctx: &ProcCtx, env: &Arc<Env>, path: &str) -> bool {
    match b {
        Behavior::Leaf { actions, .. } => {
            run_actions(actions, ctx, env);
            true
        }
        Behavior::Periodic {
            cycles, actions, ..
        } => {
            // The enclosing task was created periodic (validated placement):
            // run the body and end the cycle, letting the RTOS release the
            // task again at the next period (Fig. 4 `task_endcycle`). A
            // `Stop` outcome means the task's deadline-miss policy killed
            // it — unwind without touching the RTOS again.
            for _ in 0..*cycles {
                run_actions(actions, ctx, env);
                if env.os.task_endcycle(ctx) == rtos_model::CycleOutcome::Stop {
                    return false;
                }
            }
            true
        }
        Behavior::Seq(children) => {
            for (i, c) in children.iter().enumerate() {
                if !exec(c, ctx, env, &format!("{path}.{i}")) {
                    return false;
                }
            }
            true
        }
        Behavior::Par(children) => {
            // Fig. 6: create child tasks, suspend the parent in the RTOS,
            // fork at the SLDL level, then resume the parent.
            let named: Vec<(String, TaskId, Behavior)> = children
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let name = match c {
                        Behavior::Leaf { name, .. } | Behavior::Periodic { name, .. } => {
                            name.clone()
                        }
                        _ => format!("{path}.par{i}"),
                    };
                    let prio = priority_of(&env.priorities, &name);
                    let tid = env.os.task_create(&task_params_for(c, &name, prio));
                    (name, tid, c.clone())
                })
                .collect();
            env.os.par_start(ctx);
            let kids = named
                .into_iter()
                .map(|(name, tid, c)| {
                    let env = Arc::clone(env);
                    let child_path = name.clone();
                    Child::new(name, move |ctx: &ProcCtx| {
                        env.os.task_activate(ctx, tid);
                        if exec(&c, ctx, &env, &child_path) {
                            env.os.task_terminate(ctx);
                        }
                    })
                })
                .collect();
            ctx.par(kids);
            env.os.par_end(ctx);
            true
        }
    }
}

fn run_actions(actions: &[Action], ctx: &ProcCtx, env: &Arc<Env>) {
    for a in actions {
        match a {
            Action::Compute { label, duration } => {
                env.os.time_wait_as(ctx, *duration, label);
            }
            Action::Send(c) => env.chans[c.0].send(ctx),
            Action::Recv(c) => env.chans[c.0].recv(ctx),
            Action::Acquire(c) => env.chans[c.0].sem().acquire(ctx),
            Action::Release(c) => env.chans[c.0].sem().release(ctx),
        }
    }
}
