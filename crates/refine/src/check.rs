//! Timing-constraint checking over model runs.
//!
//! The paper's purpose statement: the RTOS model lets the designer
//! "accurately evaluate a potential system design (e.g. in respect to
//! timing constraints) for early and rapid design space exploration." This
//! module is that evaluation step: declarative constraints checked against
//! the trace of a [`ModelRun`], so an architecture-model candidate can be
//! accepted or rejected automatically in an exploration loop.

use std::time::Duration;

use sldl_sim::SimTime;

use crate::run::ModelRun;

/// A declarative timing constraint on a model run's trace.
#[derive(Debug, Clone)]
pub enum Constraint {
    /// After every marker on `marker_track`, a segment labeled `label` on
    /// `track` must *start* within `max`. Models interrupt-response
    /// budgets (e.g. "B3's `d3` starts within 100 µs of `bus_irq`").
    ResponseWithin {
        /// Marker (trigger) track.
        marker_track: String,
        /// Responding task track.
        track: String,
        /// Responding segment label.
        label: String,
        /// Response budget.
        max: Duration,
    },
    /// Segments of the listed tracks must never overlap (single-CPU
    /// serialization, or mutual exclusion between phases).
    NoOverlap {
        /// Tracks that must be mutually exclusive.
        tracks: Vec<String>,
    },
    /// Every segment labeled `label` on `track` must complete within `max`
    /// of its start (per-job latency budget).
    SegmentLatency {
        /// Task track.
        track: String,
        /// Segment label.
        label: String,
        /// Latency budget.
        max: Duration,
    },
    /// Consecutive starts of segments labeled `label` on `track` must be
    /// `period ± jitter` apart (periodic regularity, e.g. codec output).
    PeriodicStarts {
        /// Task track.
        track: String,
        /// Segment label.
        label: String,
        /// Nominal period.
        period: Duration,
        /// Allowed deviation.
        jitter: Duration,
    },
}

/// One constraint violation found by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the violated constraint in the checked slice.
    pub constraint: usize,
    /// Time at which the violation was detected.
    pub at: SimTime,
    /// Human-readable description.
    pub message: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "[{}] constraint #{}: {}",
            self.at, self.constraint, self.message
        )
    }
}

/// Checks `constraints` against the run's trace, returning all violations
/// (empty = the design meets its budgets).
#[must_use]
pub fn check(run: &ModelRun, constraints: &[Constraint]) -> Vec<Violation> {
    let segs = run.segments();
    let mut violations = Vec::new();
    for (idx, c) in constraints.iter().enumerate() {
        match c {
            Constraint::ResponseWithin {
                marker_track,
                track,
                label,
                max,
            } => {
                let markers = sldl_sim::trace::markers(&run.records, marker_track);
                let starts: Vec<SimTime> = segs
                    .get(track)
                    .map(|v| {
                        v.iter()
                            .filter(|s| &s.label == label)
                            .map(|s| s.start)
                            .collect()
                    })
                    .unwrap_or_default();
                for (t, _) in &markers {
                    let response = starts.iter().find(|&&s| s >= *t);
                    match response {
                        Some(&s) if s.saturating_since(*t) <= *max => {}
                        Some(&s) => violations.push(Violation {
                            constraint: idx,
                            at: s,
                            message: format!(
                                "`{track}:{label}` started {:?} after `{marker_track}` at {t} (budget {max:?})",
                                s.saturating_since(*t)
                            ),
                        }),
                        None => violations.push(Violation {
                            constraint: idx,
                            at: *t,
                            message: format!(
                                "no `{track}:{label}` response to `{marker_track}` at {t}"
                            ),
                        }),
                    }
                }
            }
            Constraint::NoOverlap { tracks } => {
                for i in 0..tracks.len() {
                    for j in (i + 1)..tracks.len() {
                        let (Some(a), Some(b)) = (segs.get(&tracks[i]), segs.get(&tracks[j]))
                        else {
                            continue;
                        };
                        let overlap = sldl_sim::trace::overlap(a, b);
                        if overlap > Duration::ZERO {
                            violations.push(Violation {
                                constraint: idx,
                                at: SimTime::ZERO,
                                message: format!(
                                    "`{}` and `{}` overlap for {overlap:?}",
                                    tracks[i], tracks[j]
                                ),
                            });
                        }
                    }
                }
            }
            Constraint::SegmentLatency { track, label, max } => {
                if let Some(v) = segs.get(track) {
                    for s in v.iter().filter(|s| &s.label == label) {
                        if s.duration() > *max {
                            violations.push(Violation {
                                constraint: idx,
                                at: s.end,
                                message: format!(
                                    "`{track}:{label}` took {:?} (budget {max:?})",
                                    s.duration()
                                ),
                            });
                        }
                    }
                }
            }
            Constraint::PeriodicStarts {
                track,
                label,
                period,
                jitter,
            } => {
                let starts: Vec<SimTime> = segs
                    .get(track)
                    .map(|v| {
                        v.iter()
                            .filter(|s| &s.label == label)
                            .map(|s| s.start)
                            .collect()
                    })
                    .unwrap_or_default();
                for w in starts.windows(2) {
                    let gap = w[1] - w[0];
                    let lo = period.saturating_sub(*jitter);
                    let hi = *period + *jitter;
                    if gap < lo || gap > hi {
                        violations.push(Violation {
                            constraint: idx,
                            at: w[1],
                            message: format!(
                                "`{track}:{label}` start gap {gap:?} outside {period:?} ± {jitter:?}"
                            ),
                        });
                    }
                }
            }
        }
    }
    violations
}
