//! The specification-model DSL.
//!
//! A [`SystemSpec`] captures an application the way the paper's
//! *specification model* does (Fig. 2(a)): a serial–parallel composition of
//! behaviors per processing element, communicating through channels, with
//! delays standing in for computation. The same spec is executed two ways:
//!
//! * [`run_unscheduled`](crate::run_unscheduled) — behaviors run truly in
//!   parallel on the SLDL kernel (the *unscheduled model*, Fig. 3(a)); and
//! * [`run_architecture`](crate::run_architecture) — the automated
//!   dynamic-scheduling refinement (paper §4.2): behaviors become RTOS
//!   tasks, channels are re-layered onto RTOS events, and interrupt
//!   handlers signal semaphores (the *architecture model*, Fig. 3(b)).

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use rtos_model::Priority;
use sldl_sim::SimTime;

/// Index of a channel in a [`SystemSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChanId(pub(crate) usize);

/// One step of a leaf behavior.
#[derive(Debug, Clone)]
pub enum Action {
    /// Consume CPU for `duration`; `label` names the delay annotation
    /// (the `d1..d8` of the paper's Fig. 8).
    Compute {
        /// Delay-annotation name shown in traces.
        label: String,
        /// Modeled execution time.
        duration: Duration,
    },
    /// Rendezvous-send on a channel (blocks until the receiver arrives).
    Send(ChanId),
    /// Rendezvous-receive on a channel (blocks until the sender arrives).
    Recv(ChanId),
    /// Acquire one permit of a semaphore channel — the bus-driver side of
    /// the paper's Fig. 3 interrupt interface.
    Acquire(ChanId),
    /// Release one permit of a semaphore channel.
    Release(ChanId),
}

impl Action {
    /// Convenience constructor for [`Action::Compute`].
    pub fn compute(label: impl Into<String>, duration: Duration) -> Self {
        Action::Compute {
            label: label.into(),
            duration,
        }
    }
}

/// A serial–parallel behavior composition.
#[derive(Debug, Clone)]
pub enum Behavior {
    /// A leaf behavior: a named sequence of actions.
    Leaf {
        /// Behavior name (becomes the task name after refinement).
        name: String,
        /// The behavior body.
        actions: Vec<Action>,
    },
    /// A periodic leaf behavior: the body repeats every `period` for
    /// `cycles` iterations. The refinement maps it to a periodic RTOS task
    /// calling `task_endcycle` after each iteration (the paper's periodic
    /// hard-real-time task model).
    Periodic {
        /// Behavior name (becomes the task name after refinement).
        name: String,
        /// Release period (also the implicit deadline).
        period: Duration,
        /// Number of cycles to run (keeps the simulation finite).
        cycles: u32,
        /// The per-cycle body.
        actions: Vec<Action>,
    },
    /// Sequential composition.
    Seq(Vec<Behavior>),
    /// Parallel composition (the SLDL `par`; becomes task fork/join).
    Par(Vec<Behavior>),
}

impl Behavior {
    /// Creates a leaf behavior.
    pub fn leaf(name: impl Into<String>, actions: Vec<Action>) -> Self {
        Behavior::Leaf {
            name: name.into(),
            actions,
        }
    }

    /// Creates a periodic leaf behavior.
    pub fn periodic(
        name: impl Into<String>,
        period: Duration,
        cycles: u32,
        actions: Vec<Action>,
    ) -> Self {
        Behavior::Periodic {
            name: name.into(),
            period,
            cycles,
            actions,
        }
    }

    /// The name used for this subtree when it becomes a task: the leaf
    /// name, or a synthesized name for composite branches.
    #[must_use]
    pub fn task_name(&self) -> String {
        match self {
            Behavior::Leaf { name, .. } | Behavior::Periodic { name, .. } => name.clone(),
            Behavior::Seq(_) => "seq".to_string(),
            Behavior::Par(_) => "par".to_string(),
        }
    }

    fn visit_leaves<'a>(&'a self, f: &mut impl FnMut(&'a str, &'a [Action])) {
        match self {
            Behavior::Leaf { name, actions } | Behavior::Periodic { name, actions, .. } => {
                f(name, actions)
            }
            Behavior::Seq(children) | Behavior::Par(children) => {
                for c in children {
                    c.visit_leaves(f);
                }
            }
        }
    }

    /// Total modeled computation time in this subtree (periodic bodies
    /// counted once per cycle).
    #[must_use]
    pub fn total_compute(&self) -> Duration {
        match self {
            Behavior::Leaf { actions, .. } => per_cycle_compute(actions),
            Behavior::Periodic {
                actions, cycles, ..
            } => per_cycle_compute(actions) * *cycles,
            Behavior::Seq(children) | Behavior::Par(children) => {
                children.iter().map(Behavior::total_compute).sum()
            }
        }
    }
}

fn per_cycle_compute(actions: &[Action]) -> Duration {
    actions
        .iter()
        .map(|a| match a {
            Action::Compute { duration, .. } => *duration,
            _ => Duration::ZERO,
        })
        .sum()
}

/// Kind of a specification channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Double-handshake rendezvous (both parties block until matched) —
    /// the `c1`/`c2` channels of the paper's Fig. 3.
    Rendezvous,
    /// Counting semaphore with the given initial permits — the `sem` of
    /// the paper's bus interface.
    Semaphore {
        /// Permits available at time zero.
        initial: u64,
    },
}

/// A named channel declaration.
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    /// Channel name (for traces and debugging).
    pub name: String,
    /// Channel kind.
    pub kind: ChannelKind,
}

/// An external interrupt source: at each fire time, the PE's interrupt
/// service routine runs and releases one permit of the target semaphore —
/// exactly the `ISR → sem → bus driver` structure of the paper's Fig. 3.
#[derive(Debug, Clone)]
pub struct InterruptSpec {
    /// Interrupt name (trace marker track).
    pub name: String,
    /// PE whose RTOS receives `interrupt_return` (index into
    /// [`SystemSpec::pes`]).
    pub pe: usize,
    /// Semaphore channel the ISR releases.
    pub target: ChanId,
    /// Absolute fire times.
    pub fire_times: Vec<SimTime>,
}

/// One processing element: a root behavior plus task priorities assigned
/// during refinement.
#[derive(Debug, Clone)]
pub struct PeSpec {
    /// PE name (the RTOS instance name after refinement).
    pub name: String,
    /// Root behavior executed by the PE's main task.
    pub root: Behavior,
    /// Task priorities assigned by the refinement (leaf/branch task name →
    /// priority). Unlisted tasks get [`Priority::LOWEST`].
    pub priorities: HashMap<String, Priority>,
}

/// A complete system specification.
#[derive(Debug, Clone, Default)]
pub struct SystemSpec {
    /// Processing elements.
    pub pes: Vec<PeSpec>,
    /// Channels (shared across PEs; cross-PE rendezvous is refined into a
    /// bus-style channel automatically).
    pub channels: Vec<ChannelSpec>,
    /// External interrupt sources.
    pub interrupts: Vec<InterruptSpec>,
}

impl SystemSpec {
    /// Creates an empty spec.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a channel, returning its id.
    pub fn add_channel(&mut self, name: impl Into<String>, kind: ChannelKind) -> ChanId {
        let id = ChanId(self.channels.len());
        self.channels.push(ChannelSpec {
            name: name.into(),
            kind,
        });
        id
    }

    /// Adds a processing element, returning its index.
    pub fn add_pe(&mut self, pe: PeSpec) -> usize {
        self.pes.push(pe);
        self.pes.len() - 1
    }

    /// Adds an external interrupt source.
    pub fn add_interrupt(&mut self, irq: InterruptSpec) {
        self.interrupts.push(irq);
    }

    /// Checks structural consistency of the spec.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateSpecError`] describing the first problem found:
    /// duplicate task names, dangling channel/PE references, acquiring a
    /// rendezvous, or an interrupt targeting a non-semaphore.
    pub fn validate(&self) -> Result<(), ValidateSpecError> {
        let mut names = HashSet::new();
        for pe in &self.pes {
            check_periodic_placement(&pe.root, true)?;
            let mut err = None;
            pe.root.visit_leaves(&mut |name, actions| {
                if err.is_some() {
                    return;
                }
                if !names.insert(name.to_string()) {
                    err = Some(ValidateSpecError::DuplicateLeaf(name.to_string()));
                    return;
                }
                for a in actions {
                    let (chan, need_sem) = match a {
                        Action::Send(c) | Action::Recv(c) => (*c, false),
                        Action::Acquire(c) | Action::Release(c) => (*c, true),
                        Action::Compute { .. } => continue,
                    };
                    match self.channels.get(chan.0) {
                        None => {
                            err = Some(ValidateSpecError::UnknownChannel(chan.0));
                            return;
                        }
                        Some(spec) => {
                            let is_sem = matches!(spec.kind, ChannelKind::Semaphore { .. });
                            if is_sem != need_sem {
                                err = Some(ValidateSpecError::KindMismatch {
                                    channel: spec.name.clone(),
                                });
                                return;
                            }
                        }
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        for irq in &self.interrupts {
            if irq.pe >= self.pes.len() {
                return Err(ValidateSpecError::UnknownPe(irq.pe));
            }
            match self.channels.get(irq.target.0) {
                Some(spec) if matches!(spec.kind, ChannelKind::Semaphore { .. }) => {}
                Some(spec) => {
                    return Err(ValidateSpecError::KindMismatch {
                        channel: spec.name.clone(),
                    })
                }
                None => return Err(ValidateSpecError::UnknownChannel(irq.target.0)),
            }
        }
        Ok(())
    }

    /// Total modeled computation time across all PEs.
    #[must_use]
    pub fn total_compute(&self) -> Duration {
        self.pes.iter().map(|pe| pe.root.total_compute()).sum()
    }
}

/// Periodic behaviors become their own tasks, so they may only appear as
/// the PE root or as a direct branch of a `Par` (never inside a `Seq` or a
/// plain leaf position within another task's control flow).
fn check_periodic_placement(b: &Behavior, task_position: bool) -> Result<(), ValidateSpecError> {
    match b {
        Behavior::Leaf { .. } => Ok(()),
        Behavior::Periodic { name, .. } => {
            if task_position {
                Ok(())
            } else {
                Err(ValidateSpecError::PeriodicNotATask(name.clone()))
            }
        }
        Behavior::Seq(children) => {
            for c in children {
                check_periodic_placement(c, false)?;
            }
            Ok(())
        }
        Behavior::Par(children) => {
            for c in children {
                check_periodic_placement(c, true)?;
            }
            Ok(())
        }
    }
}

/// Error from [`SystemSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateSpecError {
    /// Two leaves share a name (task names must be unique system-wide).
    DuplicateLeaf(String),
    /// An action references a channel that was never declared.
    UnknownChannel(usize),
    /// An interrupt references a PE that does not exist.
    UnknownPe(usize),
    /// Semaphore operation on a rendezvous channel or vice versa.
    KindMismatch {
        /// The offending channel's name.
        channel: String,
    },
    /// A periodic behavior is nested where it cannot become its own task.
    PeriodicNotATask(String),
}

impl core::fmt::Display for ValidateSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ValidateSpecError::DuplicateLeaf(n) => write!(f, "duplicate leaf behavior `{n}`"),
            ValidateSpecError::UnknownChannel(i) => write!(f, "unknown channel index {i}"),
            ValidateSpecError::UnknownPe(i) => write!(f, "unknown PE index {i}"),
            ValidateSpecError::KindMismatch { channel } => {
                write!(f, "operation does not match kind of channel `{channel}`")
            }
            ValidateSpecError::PeriodicNotATask(name) => {
                write!(
                    f,
                    "periodic behavior `{name}` must be a PE root or a par branch"
                )
            }
        }
    }
}

impl std::error::Error for ValidateSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn leaf_builder_and_compute_total() {
        let b = Behavior::Seq(vec![
            Behavior::leaf("a", vec![Action::compute("d1", us(10))]),
            Behavior::Par(vec![
                Behavior::leaf("b", vec![Action::compute("d2", us(20))]),
                Behavior::leaf("c", vec![Action::compute("d3", us(30))]),
            ]),
        ]);
        assert_eq!(b.total_compute(), us(60));
        assert_eq!(b.task_name(), "seq");
    }

    #[test]
    fn validate_accepts_well_formed_spec() {
        let mut spec = SystemSpec::new();
        let c = spec.add_channel("c1", ChannelKind::Rendezvous);
        let s = spec.add_channel("sem", ChannelKind::Semaphore { initial: 0 });
        spec.add_pe(PeSpec {
            name: "pe0".into(),
            root: Behavior::Par(vec![
                Behavior::leaf("tx", vec![Action::Send(c), Action::Release(s)]),
                Behavior::leaf("rx", vec![Action::Recv(c), Action::Acquire(s)]),
            ]),
            priorities: HashMap::new(),
        });
        spec.add_interrupt(InterruptSpec {
            name: "irq".into(),
            pe: 0,
            target: s,
            fire_times: vec![SimTime::from_micros(5)],
        });
        assert_eq!(spec.validate(), Ok(()));
        assert_eq!(spec.total_compute(), Duration::ZERO);
    }

    #[test]
    fn validate_rejects_duplicate_leaves() {
        let mut spec = SystemSpec::new();
        spec.add_pe(PeSpec {
            name: "pe0".into(),
            root: Behavior::Par(vec![
                Behavior::leaf("same", vec![]),
                Behavior::leaf("same", vec![]),
            ]),
            priorities: HashMap::new(),
        });
        assert_eq!(
            spec.validate(),
            Err(ValidateSpecError::DuplicateLeaf("same".into()))
        );
    }

    #[test]
    fn validate_rejects_kind_mismatch() {
        let mut spec = SystemSpec::new();
        let c = spec.add_channel("c1", ChannelKind::Rendezvous);
        spec.add_pe(PeSpec {
            name: "pe0".into(),
            root: Behavior::leaf("t", vec![Action::Acquire(c)]),
            priorities: HashMap::new(),
        });
        assert_eq!(
            spec.validate(),
            Err(ValidateSpecError::KindMismatch {
                channel: "c1".into()
            })
        );
    }

    #[test]
    fn validate_rejects_dangling_references() {
        let mut spec = SystemSpec::new();
        spec.add_pe(PeSpec {
            name: "pe0".into(),
            root: Behavior::leaf("t", vec![Action::Send(ChanId(7))]),
            priorities: HashMap::new(),
        });
        assert_eq!(spec.validate(), Err(ValidateSpecError::UnknownChannel(7)));

        let mut spec2 = SystemSpec::new();
        let s = spec2.add_channel("sem", ChannelKind::Semaphore { initial: 0 });
        spec2.add_interrupt(InterruptSpec {
            name: "irq".into(),
            pe: 3,
            target: s,
            fire_times: vec![],
        });
        assert_eq!(spec2.validate(), Err(ValidateSpecError::UnknownPe(3)));
    }
}
