//! # model-refine — specification models and dynamic-scheduling refinement
//!
//! This crate implements the *design-flow* side of the DATE 2003 paper
//! *RTOS Modeling for System Level Design*: a small DSL for specification
//! models ([`SystemSpec`]: serial–parallel behaviors, channels, interrupt
//! sources, multi-PE partitioning) and two executors —
//!
//! * [`run_unscheduled`]: the *unscheduled model*, behaviors truly parallel
//!   on the SLDL kernel (paper Fig. 3(a) / 8(a));
//! * [`run_architecture`]: the automated dynamic-scheduling refinement into
//!   an RTOS-based *architecture model* (paper Fig. 3(b) / 8(b), §4.2).
//!
//! ```
//! use model_refine::{figure3_spec, run_architecture, run_unscheduled,
//!                    Figure3Delays, RunConfig};
//! use rtos_model::{SchedAlg, TimeSlice};
//!
//! # fn main() -> Result<(), model_refine::RunModelError> {
//! let spec = figure3_spec(&Figure3Delays::default());
//! let unsched = run_unscheduled(&spec, &RunConfig::default())?;
//! let arch = run_architecture(
//!     &spec,
//!     SchedAlg::PriorityPreemptive,
//!     TimeSlice::WholeDelay,
//!     &RunConfig::default(),
//! )?;
//! // Refinement serializes the tasks: the architecture model never
//! // finishes earlier than the unscheduled model.
//! assert!(arch.end_time() >= unsched.end_time());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod architecture;
pub mod check;
pub mod comm;
mod cross;
pub mod explore;
mod figure3;
mod run;
mod spec;
mod unscheduled;

pub use architecture::{run_architecture, run_architecture_with_comm};
pub use check::{check, Constraint, Violation};
pub use comm::{BusBinding, BusChannel, BusMap, SharedBus};
pub use cross::{CrossFairness, CrossRendezvous};
pub use explore::{explore, Candidate, Evaluation};
pub use figure3::{figure3_spec, Figure3Delays};
pub use run::{ChannelFairness, ModelRun, PeMetrics, RunConfig, RunModelError};
pub use spec::{
    Action, Behavior, ChanId, ChannelKind, ChannelSpec, InterruptSpec, PeSpec, SystemSpec,
    ValidateSpecError,
};
pub use unscheduled::run_unscheduled;
