//! Communication refinement: lowering cross-PE channels onto timed,
//! arbitrated bus transactions.
//!
//! Dynamic-scheduling refinement ([`run_architecture`]) leaves every
//! cross-PE rendezvous as an abstract, zero-time [`CrossRendezvous`]. The
//! paper's design flow continues one step further: the communication
//! architecture maps those channels onto shared buses, turning each
//! message into a request/grant/transfer/release transaction whose time
//! is charged through the sending PE's RTOS and whose completion lands on
//! the receiving PE as an interrupt. This module provides that step:
//!
//! * [`BusMap`] — the declarative communication architecture (named
//!   buses plus channel → bus assignments), spec-side like PE
//!   partitioning;
//! * [`SharedBus`] / [`BusPort`] — a [`sldl_sim::bus::Bus`] instantiated
//!   for a run, with the RTOS wake-up plumbing each master needs to block
//!   while arbitrating;
//! * [`BusChannel`] — one lowered channel: rendezvous match phase, bus
//!   transaction on the sender's RTOS (`time_wait`), and an
//!   interrupt-driven delivery on the receiver's RTOS
//!   (`event_notify` from interrupt context + `interrupt_return`).
//!
//! ## Zero-latency equivalence
//!
//! A channel lowered onto an ideal bus ([`BusConfig::ideal`]:
//! zero clock, infinite width, zero setup) performs *exactly* the kernel
//! operations of the [`CrossRendezvous`] it refines — same event waits,
//! same notifies, in the same order — so the refined model's schedule is
//! byte-identical to the abstract one. The bus only appears in the
//! transaction statistics ([`SharedBus::stats`]).
//!
//! [`run_architecture`]: crate::run_architecture

use std::collections::VecDeque;
use std::sync::Arc;

use rtos_model::{Rtos, RtosEvent};
use sldl_sim::bus::{Bus, BusConfig, BusStats, MasterId};
use sldl_sim::sync::Mutex;
use sldl_sim::{ProcCtx, RecordKind};

use crate::cross::{CrossFairness, CrossRendezvous};

/// One channel → bus assignment in a [`BusMap`].
#[derive(Debug, Clone)]
pub struct BusBinding {
    /// Index of the bus (as returned by [`BusMap::add_bus`]).
    pub bus: usize,
    /// Modeled payload size of one message on this channel.
    pub bytes_per_msg: u64,
    /// Arbitration priority of this channel's master port (lower = more
    /// urgent under fixed-priority arbitration).
    pub priority: u32,
}

/// Declarative communication architecture: named buses and the cross-PE
/// channels lowered onto them. Channels *not* assigned keep their
/// abstract [`CrossRendezvous`] — [`BusMap::ideal`] (no buses at all) is
/// therefore today's behavior exactly.
#[derive(Debug, Clone, Default)]
pub struct BusMap {
    buses: Vec<BusConfig>,
    assignments: Vec<(String, BusBinding)>,
}

impl BusMap {
    /// An empty map: every cross-PE channel stays abstract.
    #[must_use]
    pub fn ideal() -> Self {
        BusMap::default()
    }

    /// Adds a bus, returning its index for [`assign`](BusMap::assign).
    pub fn add_bus(&mut self, cfg: BusConfig) -> usize {
        self.buses.push(cfg);
        self.buses.len() - 1
    }

    /// Lowers channel `channel` onto bus `binding.bus`.
    ///
    /// # Panics
    ///
    /// Panics if the bus index is unknown or the channel is already
    /// assigned.
    pub fn assign(&mut self, channel: impl Into<String>, binding: BusBinding) -> &mut Self {
        let channel = channel.into();
        assert!(
            binding.bus < self.buses.len(),
            "BusMap: unknown bus index {} for channel `{channel}`",
            binding.bus
        );
        assert!(
            self.assignments.iter().all(|(c, _)| *c != channel),
            "BusMap: channel `{channel}` assigned twice"
        );
        self.assignments.push((channel, binding));
        self
    }

    /// The configured buses, in [`add_bus`](BusMap::add_bus) order.
    #[must_use]
    pub fn buses(&self) -> &[BusConfig] {
        &self.buses
    }

    /// The binding of `channel`, if it was assigned to a bus.
    #[must_use]
    pub fn binding(&self, channel: &str) -> Option<&BusBinding> {
        self.assignments
            .iter()
            .find(|(c, _)| c == channel)
            .map(|(_, b)| b)
    }
}

/// Wake-up plumbing of one registered master: the RTOS it blocks through
/// and the event its grant arrives on.
struct Waker {
    os: Rtos,
    wake: RtosEvent,
}

/// A bus instantiated for one run, shared by every [`BusChannel`] lowered
/// onto it. Clonable; all clones share the same state.
pub struct SharedBus {
    bus: Bus,
    wakers: Arc<Mutex<Vec<Waker>>>,
}

impl Clone for SharedBus {
    fn clone(&self) -> Self {
        SharedBus {
            bus: self.bus.clone(),
            wakers: Arc::clone(&self.wakers),
        }
    }
}

impl core::fmt::Debug for SharedBus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedBus")
            .field("name", &self.bus.config().name)
            .finish()
    }
}

impl SharedBus {
    /// Instantiates a bus from its configuration.
    #[must_use]
    pub fn new(cfg: BusConfig) -> Self {
        SharedBus {
            bus: Bus::new(cfg),
            wakers: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The bus configuration.
    #[must_use]
    pub fn config(&self) -> &BusConfig {
        self.bus.config()
    }

    /// Registers a master port blocking through `os`. Call before the
    /// simulation starts.
    #[must_use]
    pub fn port(&self, name: impl Into<String>, os: &Rtos, priority: u32) -> BusPort {
        let master = self.bus.register_master(name, priority);
        let wake = os.event_new();
        self.wakers.lock().push(Waker {
            os: os.clone(),
            wake,
        });
        BusPort {
            shared: self.clone(),
            master,
            os: os.clone(),
            wake,
        }
    }

    /// Snapshot of the bus statistics.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        self.bus.stats()
    }
}

/// One master port of a [`SharedBus`], bound to the RTOS instance its
/// owning task blocks through.
#[derive(Debug)]
pub struct BusPort {
    shared: SharedBus,
    master: MasterId,
    os: Rtos,
    wake: RtosEvent,
}

impl Clone for BusPort {
    fn clone(&self) -> Self {
        BusPort {
            shared: self.shared.clone(),
            master: self.master,
            os: self.os.clone(),
            wake: self.wake,
        }
    }
}

impl BusPort {
    /// Acquires bus ownership, blocking the calling task through its own
    /// RTOS while a competing master holds the bus.
    pub fn acquire(&self, ctx: &ProcCtx) {
        if self.shared.bus.acquire(ctx, self.master) {
            return;
        }
        loop {
            self.os.event_wait(ctx, self.wake);
            if self.shared.bus.owns(self.master) {
                return;
            }
        }
    }

    /// Releases the bus; the arbiter picks the next queued master and this
    /// port wakes it through *that* master's RTOS (an interrupt-context
    /// notify from this PE's point of view).
    pub fn release(&self, ctx: &ProcCtx) {
        if let Some(next) = self.shared.bus.release(ctx, self.master) {
            let wakers = self.shared.wakers.lock();
            let w = &wakers[next.0 as usize];
            let (os, wake) = (w.os.clone(), w.wake);
            drop(wakers);
            os.event_notify(ctx, wake);
        }
    }
}

struct ChanQ<T> {
    payloads: VecDeque<T>,
    ready: u64,
}

/// A cross-PE channel lowered onto a bus: rendezvous match phase, timed
/// arbitrated transfer charged to the sender's RTOS, interrupt-driven
/// delivery on the receiver's RTOS. With a zero-cost bus configuration
/// the transaction machinery is skipped entirely and the channel performs
/// exactly the kernel operations of its abstract [`CrossRendezvous`].
pub struct BusChannel<T> {
    cross: CrossRendezvous,
    port: BusPort,
    receiver_os: Rtos,
    data_ready: RtosEvent,
    name: Arc<str>,
    bytes_per_msg: u64,
    zero_cost: bool,
    q: Arc<Mutex<ChanQ<T>>>,
}

impl<T> Clone for BusChannel<T> {
    fn clone(&self) -> Self {
        BusChannel {
            cross: self.cross.clone(),
            port: self.port.clone(),
            receiver_os: self.receiver_os.clone(),
            data_ready: self.data_ready,
            name: Arc::clone(&self.name),
            bytes_per_msg: self.bytes_per_msg,
            zero_cost: self.zero_cost,
            q: Arc::clone(&self.q),
        }
    }
}

impl<T> core::fmt::Debug for BusChannel<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BusChannel")
            .field("name", &self.name)
            .field("bus", &self.port.shared.config().name)
            .field("bytes_per_msg", &self.bytes_per_msg)
            .field("zero_cost", &self.zero_cost)
            .finish()
    }
}

impl<T: Send + 'static> BusChannel<T> {
    /// Lowers channel `name` (senders on `sender_os`, receivers on
    /// `receiver_os`) onto `bus`, registering the sender side as a master
    /// port with the given arbitration `priority`.
    #[must_use]
    pub fn new(
        name: &str,
        sender_os: Rtos,
        receiver_os: Rtos,
        bus: &SharedBus,
        bytes_per_msg: u64,
        priority: u32,
    ) -> Self {
        let cross = CrossRendezvous::named(sender_os.clone(), receiver_os.clone(), name);
        let port = bus.port(format!("{}:{name}", sender_os.name()), &sender_os, priority);
        let data_ready = receiver_os.event_new();
        BusChannel {
            cross,
            port,
            receiver_os,
            data_ready,
            name: Arc::from(name),
            bytes_per_msg,
            zero_cost: bus.config().is_zero_cost(),
            q: Arc::new(Mutex::new(ChanQ {
                payloads: VecDeque::new(),
                ready: 0,
            })),
        }
    }

    /// Sends `value` to the receiver PE: rendezvous with a receiver, win
    /// the bus, charge the transfer through the sender's RTOS, then raise
    /// the receive interrupt on the remote RTOS.
    pub fn send(&self, ctx: &ProcCtx, value: T) {
        if self.zero_cost {
            // Structurally identical to the abstract rendezvous: the data
            // moves at the match point, no extra kernel operations. Only
            // the bus statistics see the message.
            self.q.lock().payloads.push_back(value);
            self.port.shared.bus.count_zero_transfer(self.bytes_per_msg);
            self.cross.send(ctx);
            return;
        }
        // Match phase: block until a receiver has arrived (the paper's
        // two-party channel protocol precedes the bus transaction).
        self.cross.send(ctx);
        // Arbitration + data phase, charged to the sending task.
        self.port.acquire(ctx);
        let dur = self
            .port
            .shared
            .bus
            .transfer_begin(ctx, self.port.master, self.bytes_per_msg);
        if !dur.is_zero() {
            let label = format!("bus:{}", self.port.shared.config().name);
            self.port.os.time_wait_as(ctx, dur, &label);
        }
        self.port.shared.bus.transfer_end(ctx, self.port.master);
        self.port.release(ctx);
        // Delivery: the transfer-complete interrupt lands on the receiver
        // PE; its ISR publishes the data and returns through the RTOS.
        {
            let mut q = self.q.lock();
            q.payloads.push_back(value);
            q.ready += 1;
        }
        ctx.record(RecordKind::Marker {
            track: format!("{}:irq", self.receiver_os.name()),
            label: format!("rx:{}", self.name),
        });
        self.receiver_os.event_notify(ctx, self.data_ready);
        self.receiver_os.interrupt_return(ctx);
    }

    /// Receives one message: rendezvous with a sender, then block until
    /// its bus transfer completes and the receive interrupt publishes the
    /// data.
    pub fn recv(&self, ctx: &ProcCtx) -> T {
        if self.zero_cost {
            self.cross.recv(ctx);
            return self
                .q
                .lock()
                .payloads
                .pop_front()
                .expect("rendezvous completed without a payload");
        }
        self.cross.recv(ctx);
        loop {
            {
                let mut q = self.q.lock();
                if q.ready > 0 {
                    q.ready -= 1;
                    return q
                        .payloads
                        .pop_front()
                        .expect("data-ready signaled without a payload");
                }
            }
            self.receiver_os.event_wait(ctx, self.data_ready);
        }
    }

    /// Cumulative rendezvous fairness counters of the match phase.
    #[must_use]
    pub fn fairness(&self) -> CrossFairness {
        self.cross.fairness()
    }

    /// The channel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Statistics of the bus this channel is lowered onto (shared with
    /// every other channel on the same bus).
    #[must_use]
    pub fn bus_stats(&self) -> BusStats {
        self.port.shared.stats()
    }
}
