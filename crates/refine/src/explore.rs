//! Design-space exploration over scheduling configurations.
//!
//! The paper's closing argument is that the RTOS model enables "early and
//! rapid design space exploration": many candidate dynamic-scheduling
//! configurations can be simulated and compared in seconds. This module is
//! the exploration driver: it sweeps candidate configurations (scheduling
//! algorithm × preemption granularity × kernel overhead) over one spec,
//! checks each against the design's timing constraints, and ranks the
//! survivors.

use std::time::Duration;

use rtos_model::{SchedAlg, TimeSlice};

use crate::check::{check, Constraint, Violation};
use crate::run::{ModelRun, RunModelError};
use crate::spec::SystemSpec;

/// One scheduling configuration to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Scheduling algorithm.
    pub alg: SchedAlg,
    /// Preemption-modeling granularity.
    pub slice: TimeSlice,
    /// Modeled kernel cost per context switch.
    pub switch_cost: Duration,
}

impl Candidate {
    /// A candidate with the paper's defaults (whole-delay preemption, zero
    /// kernel cost).
    #[must_use]
    pub fn new(alg: SchedAlg) -> Self {
        Candidate {
            alg,
            slice: TimeSlice::WholeDelay,
            switch_cost: Duration::ZERO,
        }
    }
}

impl core::fmt::Display for Candidate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.alg)?;
        match self.slice {
            TimeSlice::WholeDelay => write!(f, ", whole-delay")?,
            TimeSlice::Quantum(q) => write!(f, ", {}us slices", q.as_micros())?,
        }
        if !self.switch_cost.is_zero() {
            write!(f, ", {}ns/switch", self.switch_cost.as_nanos())?;
        }
        Ok(())
    }
}

/// Evaluation of one candidate.
#[derive(Debug)]
pub struct Evaluation {
    /// The configuration evaluated.
    pub candidate: Candidate,
    /// The architecture-model run (for further inspection).
    pub run: ModelRun,
    /// Constraint violations (empty = feasible).
    pub violations: Vec<Violation>,
    /// Total context switches (a cost proxy: scheduling overhead on the
    /// real target).
    pub context_switches: u64,
}

impl Evaluation {
    /// Whether the candidate met every constraint.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Simulates every candidate against `spec`, checks `constraints`, and
/// returns the evaluations **sorted best-first**: feasible candidates
/// before infeasible ones, fewer violations first, then fewer context
/// switches (less kernel overhead on the eventual target).
///
/// # Errors
///
/// Returns the first simulation error encountered (an invalid spec fails
/// on the first candidate).
pub fn explore(
    spec: &SystemSpec,
    candidates: &[Candidate],
    constraints: &[Constraint],
) -> Result<Vec<Evaluation>, RunModelError> {
    let mut evaluations = Vec::with_capacity(candidates.len());
    for &candidate in candidates {
        let run = run_with(spec, candidate)?;
        let violations = check(&run, constraints);
        let context_switches = run.context_switches();
        evaluations.push(Evaluation {
            candidate,
            run,
            violations,
            context_switches,
        });
    }
    evaluations.sort_by_key(|e| (e.violations.len(), e.context_switches));
    Ok(evaluations)
}

fn run_with(spec: &SystemSpec, c: Candidate) -> Result<ModelRun, RunModelError> {
    crate::architecture::run_architecture_configured(spec, c.alg, c.slice, c.switch_cost)
}
