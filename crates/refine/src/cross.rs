//! Cross-PE rendezvous channel for architecture models.
//!
//! When dynamic-scheduling refinement maps the two parties of a rendezvous
//! channel onto *different* processing elements, each side must block
//! through its own RTOS instance while waking the partner through the
//! partner's instance — the abstract equivalent of the paper's bus channel
//! with an interrupt on the receiving side: the cross-notify arrives on the
//! remote RTOS in interrupt context (it dispatches immediately only if that
//! CPU is idle; a running task is preempted at its next delay boundary).

use std::sync::Arc;

use rtos_model::{Rtos, RtosEvent};
use sldl_sim::sync::Mutex;
use sldl_sim::{ProcCtx, RecordKind};

struct CrossState {
    pending_senders: u64,
    pending_receivers: u64,
    grants_to_senders: u64,
    grants_to_receivers: u64,
    /// Cumulative grant totals (never decremented; the fields above are
    /// consumable tokens). Exported via [`CrossRendezvous::fairness`].
    sender_grants_total: u64,
    receiver_grants_total: u64,
}

/// Cumulative grant counts of one cross-PE rendezvous: how often each side
/// arrived second and was granted by an already-waiting partner. A heavily
/// one-sided split identifies the rate-limiting party of the link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossFairness {
    /// Grants handed to blocked senders (receiver arrived second).
    pub grants_to_senders: u64,
    /// Grants handed to blocked receivers (sender arrived second).
    pub grants_to_receivers: u64,
}

/// A rendezvous whose sender tasks live on `sender_os` and receiver tasks
/// on `receiver_os`. Clonable; all clones share the same state.
pub struct CrossRendezvous {
    sender_os: Rtos,
    receiver_os: Rtos,
    sender_wake: RtosEvent,
    receiver_wake: RtosEvent,
    /// When set, every grant lands in the trace as an instant on the
    /// `xchan:{label}` track (`grant:sender` / `grant:receiver`).
    label: Option<Arc<str>>,
    state: Arc<Mutex<CrossState>>,
}

impl Clone for CrossRendezvous {
    fn clone(&self) -> Self {
        CrossRendezvous {
            sender_os: self.sender_os.clone(),
            receiver_os: self.receiver_os.clone(),
            sender_wake: self.sender_wake,
            receiver_wake: self.receiver_wake,
            label: self.label.clone(),
            state: Arc::clone(&self.state),
        }
    }
}

impl core::fmt::Debug for CrossRendezvous {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("CrossRendezvous")
            .field("sender_os", &self.sender_os.name())
            .field("receiver_os", &self.receiver_os.name())
            .field("pending_senders", &st.pending_senders)
            .field("pending_receivers", &st.pending_receivers)
            .finish()
    }
}

impl CrossRendezvous {
    /// Creates a cross-PE rendezvous between the two RTOS instances.
    #[must_use]
    pub fn new(sender_os: Rtos, receiver_os: Rtos) -> Self {
        let sender_wake = sender_os.event_new();
        let receiver_wake = receiver_os.event_new();
        CrossRendezvous {
            sender_os,
            receiver_os,
            sender_wake,
            receiver_wake,
            label: None,
            state: Arc::new(Mutex::new(CrossState {
                pending_senders: 0,
                pending_receivers: 0,
                grants_to_senders: 0,
                grants_to_receivers: 0,
                sender_grants_total: 0,
                receiver_grants_total: 0,
            })),
        }
    }

    /// Like [`new`](CrossRendezvous::new), additionally emitting a trace
    /// instant on the `xchan:{label}` track at every grant.
    #[must_use]
    pub fn named(sender_os: Rtos, receiver_os: Rtos, label: &str) -> Self {
        let mut c = CrossRendezvous::new(sender_os, receiver_os);
        c.label = Some(Arc::from(label));
        c
    }

    /// Cumulative grant totals of this rendezvous.
    #[must_use]
    pub fn fairness(&self) -> CrossFairness {
        let st = self.state.lock();
        CrossFairness {
            grants_to_senders: st.sender_grants_total,
            grants_to_receivers: st.receiver_grants_total,
        }
    }

    fn grant_instant(&self, ctx: &ProcCtx, side: &str) {
        if let Some(label) = &self.label {
            ctx.record(RecordKind::Marker {
                track: format!("xchan:{label}"),
                label: format!("grant:{side}"),
            });
        }
    }

    /// Blocks the calling task (on the sender PE) until a receiver arrives.
    pub fn send(&self, ctx: &ProcCtx) {
        {
            let mut st = self.state.lock();
            if st.pending_receivers > 0 {
                st.pending_receivers -= 1;
                st.grants_to_receivers += 1;
                st.receiver_grants_total += 1;
                drop(st);
                self.grant_instant(ctx, "receiver");
                // Wakes the partner through *its* RTOS: from this PE's point
                // of view that is an interrupt-context notify.
                self.receiver_os.event_notify(ctx, self.receiver_wake);
                return;
            }
            st.pending_senders += 1;
        }
        loop {
            self.sender_os.event_wait(ctx, self.sender_wake);
            let mut st = self.state.lock();
            if st.grants_to_senders > 0 {
                st.grants_to_senders -= 1;
                return;
            }
        }
    }

    /// Blocks the calling task (on the receiver PE) until a sender arrives.
    pub fn recv(&self, ctx: &ProcCtx) {
        {
            let mut st = self.state.lock();
            if st.pending_senders > 0 {
                st.pending_senders -= 1;
                st.grants_to_senders += 1;
                st.sender_grants_total += 1;
                drop(st);
                self.grant_instant(ctx, "sender");
                self.sender_os.event_notify(ctx, self.sender_wake);
                return;
            }
            st.pending_receivers += 1;
        }
        loop {
            self.receiver_os.event_wait(ctx, self.receiver_wake);
            let mut st = self.state.lock();
            if st.grants_to_receivers > 0 {
                st.grants_to_receivers -= 1;
                return;
            }
        }
    }
}
