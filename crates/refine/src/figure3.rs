//! The paper's running example (Fig. 3): a single PE executing `B1`
//! followed by `par { B2, B3 }`, with rendezvous channels `c1`/`c2` between
//! B2 and B3 and an external interrupt signalling a semaphore that B3's bus
//! driver blocks on.
//!
//! The delay values default to a set that reproduces the *shape* of the
//! simulation traces in Fig. 8 (the paper does not give absolute numbers).

use std::collections::HashMap;
use std::time::Duration;

use rtos_model::Priority;
use sldl_sim::SimTime;

use crate::spec::{Action, Behavior, ChannelKind, InterruptSpec, PeSpec, SystemSpec};

/// Delay annotations of the Fig. 3 example (the `d1..d8` of Fig. 8), plus
/// the interrupt time `t4` and the initial `B1` delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure3Delays {
    /// B1's execution time (runs before the par in the refined model).
    pub b1: Duration,
    /// B3: first compute segment (before receiving on `c1`).
    pub d1: Duration,
    /// B3: second segment (between `c1` and the interrupt wait).
    pub d2: Duration,
    /// B3: third segment (after the interrupt, before sending on `c2`).
    pub d3: Duration,
    /// B3: final segment.
    pub d4: Duration,
    /// B2: first segment (before sending on `c1`).
    pub d5: Duration,
    /// B2: second segment.
    pub d6: Duration,
    /// B2: third segment (B2 then waits for `c2`).
    pub d7: Duration,
    /// B2: final segment.
    pub d8: Duration,
    /// Absolute time of the external interrupt, relative to the start of
    /// the par (the paper's `t4`). Must land while B3 waits for it in the
    /// unscheduled model.
    pub interrupt_at: Duration,
}

impl Default for Figure3Delays {
    fn default() -> Self {
        let us = Duration::from_micros;
        Figure3Delays {
            b1: us(100),
            d1: us(200),
            d2: us(150),
            d3: us(100),
            d4: us(150),
            d5: us(300),
            d6: us(300),
            d7: us(200),
            d8: us(250),
            interrupt_at: us(700),
        }
    }
}

/// Builds the Fig. 3 system spec with the given delays.
///
/// Task priorities follow the paper: B3 is the highest-priority task, then
/// B2, then the main task — "since task B3 has the higher priority, it
/// executes unless it is blocked".
#[must_use]
pub fn figure3_spec(d: &Figure3Delays) -> SystemSpec {
    let mut spec = SystemSpec::new();
    let c1 = spec.add_channel("c1", ChannelKind::Rendezvous);
    let c2 = spec.add_channel("c2", ChannelKind::Rendezvous);
    let sem = spec.add_channel("sem", ChannelKind::Semaphore { initial: 0 });

    let b2 = Behavior::leaf(
        "task_b2",
        vec![
            Action::compute("d5", d.d5),
            Action::Send(c1),
            Action::compute("d6", d.d6),
            Action::compute("d7", d.d7),
            Action::Recv(c2),
            Action::compute("d8", d.d8),
        ],
    );
    let b3 = Behavior::leaf(
        "task_b3",
        vec![
            Action::compute("d1", d.d1),
            Action::Recv(c1),
            Action::compute("d2", d.d2),
            // The bus-driver side of the interrupt interface.
            Action::Acquire(sem),
            Action::compute("d3", d.d3),
            Action::Send(c2),
            Action::compute("d4", d.d4),
        ],
    );
    let root = Behavior::Seq(vec![
        Behavior::leaf("b1", vec![Action::compute("b1", d.b1)]),
        Behavior::Par(vec![b2, b3]),
    ]);

    let mut priorities = HashMap::new();
    priorities.insert("task_b3".to_string(), Priority(1));
    priorities.insert("task_b2".to_string(), Priority(2));
    priorities.insert("pe_main".to_string(), Priority(3));

    spec.add_pe(PeSpec {
        name: "pe".into(),
        root,
        priorities,
    });
    spec.add_interrupt(InterruptSpec {
        name: "bus_irq".into(),
        pe: 0,
        target: sem,
        fire_times: vec![SimTime::ZERO + d.b1 + d.interrupt_at],
    });
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates() {
        let spec = figure3_spec(&Figure3Delays::default());
        assert_eq!(spec.validate(), Ok(()));
        assert_eq!(spec.pes.len(), 1);
        assert_eq!(spec.channels.len(), 3);
        assert_eq!(spec.interrupts.len(), 1);
    }

    #[test]
    fn total_compute_is_sum_of_annotations() {
        let d = Figure3Delays::default();
        let spec = figure3_spec(&d);
        let total = d.b1 + d.d1 + d.d2 + d.d3 + d.d4 + d.d5 + d.d6 + d.d7 + d.d8;
        assert_eq!(spec.total_compute(), total);
    }
}
