//! Executor for the *unscheduled model*: behaviors run truly in parallel on
//! the raw SLDL kernel (paper Fig. 3(a) / Fig. 8(a)).

use std::sync::Arc;

use sldl_sim::{
    Child, Handshake, ProcCtx, RecordKind, Semaphore, Simulation, SldlSync, TraceConfig,
};

use crate::run::{ModelRun, RunConfig, RunModelError};
use crate::spec::{Action, Behavior, ChannelKind, SystemSpec};

enum SpecChan {
    Rendezvous(Handshake<SldlSync>),
    Sem(Semaphore<SldlSync>),
}

impl SpecChan {
    fn rendezvous(&self) -> &Handshake<SldlSync> {
        match self {
            SpecChan::Rendezvous(h) => h,
            SpecChan::Sem(_) => panic!("rendezvous operation on semaphore channel"),
        }
    }

    fn sem(&self) -> &Semaphore<SldlSync> {
        match self {
            SpecChan::Sem(s) => s,
            SpecChan::Rendezvous(_) => panic!("semaphore operation on rendezvous channel"),
        }
    }
}

/// Executes `spec` as an unscheduled model: every `par` branch is a truly
/// concurrent SLDL process, channels use raw SLDL events, and interrupt
/// sources release their semaphores directly.
///
/// # Errors
///
/// Returns [`RunModelError::Invalid`] if the spec fails validation and
/// [`RunModelError::Sim`] if a process panics during simulation.
pub fn run_unscheduled(spec: &SystemSpec, cfg: &RunConfig) -> Result<ModelRun, RunModelError> {
    spec.validate()?;
    let mut sim = Simulation::builder().trace(TraceConfig::default()).build();
    let trace = sim.trace_handle().expect("trace configured");
    let layer = sim.sync_layer();

    let chans: Arc<Vec<SpecChan>> = Arc::new(
        spec.channels
            .iter()
            .map(|c| match c.kind {
                ChannelKind::Rendezvous => SpecChan::Rendezvous(Handshake::new(layer.clone())),
                ChannelKind::Semaphore { initial } => {
                    SpecChan::Sem(Semaphore::new(initial, layer.clone()))
                }
            })
            .collect(),
    );

    for pe in &spec.pes {
        let root = pe.root.clone();
        let chans = Arc::clone(&chans);
        sim.spawn(Child::new(format!("{}_main", pe.name), move |ctx| {
            exec(&root, ctx, &chans);
        }));
    }

    for irq in &spec.interrupts {
        let chans = Arc::clone(&chans);
        let name = irq.name.clone();
        let mut times = irq.fire_times.clone();
        times.sort();
        let target = irq.target;
        sim.spawn(Child::new(format!("isr_{name}"), move |ctx| {
            for t in times {
                let now = ctx.now();
                if t > now {
                    ctx.waitfor(t - now);
                }
                ctx.record(RecordKind::Marker {
                    track: name.clone(),
                    label: "interrupt".into(),
                });
                chans[target.0].sem().release(ctx);
            }
        }));
    }

    let report = match cfg.run_until {
        Some(t) => sim.run_until(t)?,
        None => sim.run()?,
    };
    Ok(ModelRun {
        report,
        records: trace.snapshot(),
        pe_metrics: Vec::new(),
        bus_stats: Vec::new(),
        channel_fairness: Vec::new(),
    })
}

fn exec(b: &Behavior, ctx: &ProcCtx, chans: &Arc<Vec<SpecChan>>) {
    match b {
        Behavior::Leaf { name, actions } => run_actions(name, actions, ctx, chans),
        Behavior::Periodic {
            name,
            period,
            cycles,
            actions,
        } => {
            let start = ctx.now();
            for k in 0..*cycles {
                run_actions(name, actions, ctx, chans);
                // Wait out the rest of the period (skipped if overrun).
                let next = start + *period * (k + 1);
                let now = ctx.now();
                if next > now {
                    ctx.waitfor(next - now);
                }
            }
        }
        Behavior::Seq(children) => {
            for c in children {
                exec(c, ctx, chans);
            }
        }
        Behavior::Par(children) => {
            let kids = children
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let c = c.clone();
                    let chans = Arc::clone(chans);
                    Child::new(format!("{}_{i}", c.task_name()), move |ctx: &ProcCtx| {
                        exec(&c, ctx, &chans);
                    })
                })
                .collect();
            ctx.par(kids);
        }
    }
}

fn run_actions(name: &str, actions: &[Action], ctx: &ProcCtx, chans: &Arc<Vec<SpecChan>>) {
    for a in actions {
        match a {
            Action::Compute { label, duration } => {
                ctx.record(RecordKind::SpanBegin {
                    track: name.to_string(),
                    label: label.clone(),
                });
                ctx.waitfor(*duration);
                ctx.record(RecordKind::SpanEnd {
                    track: name.to_string(),
                });
            }
            Action::Send(c) => chans[c.0].rendezvous().send(ctx),
            Action::Recv(c) => chans[c.0].rendezvous().recv(ctx),
            Action::Acquire(c) => chans[c.0].sem().acquire(ctx),
            Action::Release(c) => chans[c.0].sem().release(ctx),
        }
    }
}
