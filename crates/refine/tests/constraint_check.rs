//! Design-space-exploration tests: timing constraints accept or reject
//! architecture-model candidates automatically — the paper's "evaluate a
//! potential system design (e.g. in respect to timing constraints)".

use std::time::Duration;

use model_refine::{
    check, figure3_spec, run_architecture, run_unscheduled, Constraint, Figure3Delays, RunConfig,
};
use rtos_model::{SchedAlg, TimeSlice};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// An interrupt-response budget of 100 µs on B3's `d3`.
fn irq_budget() -> Constraint {
    Constraint::ResponseWithin {
        marker_track: "bus_irq".into(),
        track: "task_b3".into(),
        label: "d3".into(),
        max: us(100),
    }
}

#[test]
fn whole_delay_candidate_misses_the_interrupt_budget() {
    // Under whole-delay preemption modeling, B3's d3 starts 250 µs after
    // the interrupt (the t4 → t4' delay): the candidate is rejected.
    let spec = figure3_spec(&Figure3Delays::default());
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    let violations = check(&run, &[irq_budget()]);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations[0].message.contains("250"), "{}", violations[0]);
}

#[test]
fn sliced_candidate_meets_the_interrupt_budget() {
    // With 50 µs preemption slices the response is 0 µs: accepted. This is
    // the design-exploration loop the checker exists for.
    let spec = figure3_spec(&Figure3Delays::default());
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::Quantum(us(50)),
        &RunConfig::default(),
    )
    .unwrap();
    assert!(check(&run, &[irq_budget()]).is_empty());
}

#[test]
fn no_overlap_rejects_the_unscheduled_model_and_accepts_the_refined_one() {
    let spec = figure3_spec(&Figure3Delays::default());
    let c = Constraint::NoOverlap {
        tracks: vec!["task_b2".into(), "task_b3".into()],
    };
    let unsched = run_unscheduled(&spec, &RunConfig::default()).unwrap();
    assert_eq!(check(&unsched, std::slice::from_ref(&c)).len(), 1);
    let arch = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    assert!(check(&arch, &[c]).is_empty());
}

#[test]
fn segment_latency_flags_stretched_segments() {
    // In the sliced architecture model, B2's d6 is preempted mid-delay, so
    // some d6 *slice* segments are short; check the whole-delay model where
    // d6 is one 300 µs segment against a 200 µs budget.
    let spec = figure3_spec(&Figure3Delays::default());
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    let violations = check(
        &run,
        &[Constraint::SegmentLatency {
            track: "task_b2".into(),
            label: "d6".into(),
            max: us(200),
        }],
    );
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].constraint, 0);
}

#[test]
fn periodic_starts_accepts_regular_and_rejects_jittery_schedules() {
    use model_refine::{Action, Behavior, PeSpec, SystemSpec};
    use std::collections::HashMap;

    // A lone periodic task is perfectly regular.
    let mut spec = SystemSpec::new();
    spec.add_pe(PeSpec {
        name: "pe".into(),
        root: Behavior::periodic("tick", us(500), 6, vec![Action::compute("w", us(100))]),
        priorities: HashMap::new(),
    });
    let run = run_architecture(
        &spec,
        SchedAlg::Rms,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    let regular = Constraint::PeriodicStarts {
        track: "tick".into(),
        label: "w".into(),
        period: us(500),
        jitter: us(0),
    };
    assert!(check(&run, std::slice::from_ref(&regular)).is_empty());

    // An impossible tighter period is rejected for every gap.
    let too_fast = Constraint::PeriodicStarts {
        track: "tick".into(),
        label: "w".into(),
        period: us(400),
        jitter: us(10),
    };
    assert_eq!(check(&run, &[too_fast]).len(), 5);
}

#[test]
fn missing_response_is_reported() {
    // A budget on a label that never executes reports "no response".
    let spec = figure3_spec(&Figure3Delays::default());
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    let violations = check(
        &run,
        &[Constraint::ResponseWithin {
            marker_track: "bus_irq".into(),
            track: "task_b3".into(),
            label: "nonexistent".into(),
            max: us(100),
        }],
    );
    assert_eq!(violations.len(), 1);
    assert!(violations[0].message.contains("no "), "{}", violations[0]);
}
