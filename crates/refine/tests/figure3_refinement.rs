//! Reproduction of the paper's Fig. 3 example and Fig. 8 trace semantics:
//! the unscheduled model overlaps B2 and B3, the refined architecture model
//! serializes them with priority scheduling and delayed preemption.

use std::time::Duration;

use model_refine::{figure3_spec, run_architecture, run_unscheduled, Figure3Delays, RunConfig};
use rtos_model::{SchedAlg, TimeSlice};
use sldl_sim::SimTime;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

#[test]
fn unscheduled_model_runs_truly_parallel() {
    let spec = figure3_spec(&Figure3Delays::default());
    let run = run_unscheduled(&spec, &RunConfig::default()).unwrap();
    assert!(run.report.blocked.is_empty());
    // Analytic schedule: B3 ends d4 at 1050, B2 ends d8 at 1150.
    assert_eq!(run.end_time(), SimTime::from_micros(1150));
    // True parallelism: executions of B2 and B3 overlap (d5 ∥ d1 alone is
    // 200us).
    assert!(run.overlap("task_b2", "task_b3") >= us(200));
    // No RTOS → no context switches (Table 1, "unscheduled" column).
    assert_eq!(run.context_switches(), 0);
}

#[test]
fn architecture_model_serializes_under_priority_scheduling() {
    let d = Figure3Delays::default();
    let spec = figure3_spec(&d);
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    assert!(run.report.blocked.is_empty(), "{:?}", run.report.blocked);
    // Serialized: end = total modeled compute time (single CPU, no idle
    // gaps until the very end).
    assert_eq!(run.end_time(), SimTime::from_micros(1750));
    assert_eq!(run.overlap("task_b2", "task_b3"), Duration::ZERO);
    assert_eq!(run.overlap("task_b2", "b1"), Duration::ZERO);
    assert!(run.context_switches() > 0);

    // Fig. 8(b) ordering: B3 (higher priority) executes d1 first once the
    // par starts; B2 only runs while B3 is blocked.
    let segs = run.segments();
    let b3 = &segs["task_b3"];
    let b2 = &segs["task_b2"];
    assert_eq!(b3[0].label, "d1");
    assert_eq!(b3[0].start, SimTime::from_micros(100));
    assert_eq!(b2[0].label, "d5");
    assert_eq!(b2[0].start, SimTime::from_micros(300));
}

#[test]
fn preemption_is_delayed_to_delay_step_boundary() {
    // The t4 → t4' behavior: the interrupt at 800 wakes B3, but B2 finishes
    // its current delay step d6 (ending at 1050) before B3's d3 starts.
    let d = Figure3Delays::default();
    let spec = figure3_spec(&d);
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    let segs = run.segments();
    let d3 = segs["task_b3"].iter().find(|s| s.label == "d3").unwrap();
    let d6 = segs["task_b2"].iter().find(|s| s.label == "d6").unwrap();
    assert_eq!(d6.end, SimTime::from_micros(1050));
    assert_eq!(d3.start, d6.end, "switch delayed to end of d6 (t4')");
    // The interrupt marker is earlier than the switch.
    let irq = sldl_sim::trace::markers(&run.records, "bus_irq");
    assert_eq!(irq.len(), 1);
    assert_eq!(irq[0].0, SimTime::from_micros(800));
}

#[test]
fn quantum_slicing_tightens_interrupt_response() {
    let d = Figure3Delays::default();
    let spec = figure3_spec(&d);
    let sliced = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::Quantum(us(50)),
        &RunConfig::default(),
    )
    .unwrap();
    let segs = sliced.segments();
    let d3 = segs["task_b3"].iter().find(|s| s.label == "d3").unwrap();
    // Interrupt at 800; with 50us slices inside d6 (which started at 750),
    // B3 takes over at the next boundary: 800us exactly.
    assert_eq!(d3.start, SimTime::from_micros(800));
    // Total time is conserved regardless of slicing.
    assert_eq!(sliced.end_time(), SimTime::from_micros(1750));
    assert_eq!(sliced.overlap("task_b2", "task_b3"), Duration::ZERO);
}

#[test]
fn fifo_scheduling_changes_the_interleaving() {
    let d = Figure3Delays::default();
    let spec = figure3_spec(&d);
    let run = run_architecture(
        &spec,
        SchedAlg::Fifo,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    assert!(run.report.blocked.is_empty());
    // Still serialized and conserving total compute.
    assert_eq!(run.end_time(), SimTime::from_micros(1750));
    assert_eq!(run.overlap("task_b2", "task_b3"), Duration::ZERO);
    // Under FIFO, B2 (activated first) runs d5 before B3's d1.
    let segs = run.segments();
    assert_eq!(segs["task_b2"][0].start, SimTime::from_micros(100));
    assert!(segs["task_b3"][0].start >= SimTime::from_micros(400));
}

#[test]
fn response_time_metrics_are_collected() {
    let d = Figure3Delays::default();
    let spec = figure3_spec(&d);
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    assert_eq!(run.pe_metrics.len(), 1);
    let m = &run.pe_metrics[0].metrics;
    // Three tasks: pe_main, task_b2, task_b3.
    assert_eq!(m.tasks.len(), 3);
    let b3 = m.tasks.iter().find(|t| t.name == "task_b3").unwrap();
    // The delayed preemption at t4' shows up as a 250us dispatch latency
    // (ready at 800 after the ISR, dispatched at 1050).
    assert!(b3.dispatch_latencies.iter().any(|&l| l == us(250)));
    assert!(m.utilization() > 0.9);
}

#[test]
fn run_until_cuts_the_simulation_short() {
    let spec = figure3_spec(&Figure3Delays::default());
    let cfg = RunConfig {
        run_until: Some(SimTime::from_micros(500)),
    };
    let run = run_unscheduled(&spec, &cfg).unwrap();
    assert_eq!(run.end_time(), SimTime::from_micros(500));
    assert!(!run.report.blocked.is_empty());
}
