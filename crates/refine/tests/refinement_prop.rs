//! Property-based tests on the refinement: for randomly generated
//! single-PE specs, the architecture model serializes (makespan = total
//! compute, zero overlap), the unscheduled model never finishes later than
//! the architecture model, and both executors are deterministic.

use std::collections::HashMap;
use std::time::Duration;

use model_refine::{
    run_architecture, run_unscheduled, Action, Behavior, PeSpec, RunConfig, SystemSpec,
};
use proptest::prelude::*;
use rtos_model::{Priority, SchedAlg, TimeSlice};
use sldl_sim::SimTime;

/// Random compute-only behavior trees (no channels: always deadlock-free).
fn behavior_strategy(depth: u32) -> BoxedStrategy<Behavior> {
    let leaf = (0u32..1000, proptest::collection::vec(1u64..300, 1..4)).prop_map(
        move |(salt, durs)| {
            Behavior::Leaf {
                name: format!("leaf{salt}"), // renamed later for uniqueness
                actions: durs
                    .into_iter()
                    .enumerate()
                    .map(|(k, d)| Action::compute(format!("d{k}"), Duration::from_micros(d)))
                    .collect(),
            }
        },
    );
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            3 => leaf,
            1 => proptest::collection::vec(behavior_strategy(depth - 1), 1..4)
                .prop_map(Behavior::Seq),
            2 => proptest::collection::vec(behavior_strategy(depth - 1), 2..4)
                .prop_map(Behavior::Par),
        ]
        .boxed()
    }
}

/// Renames leaves to be globally unique and assigns rotating priorities.
fn finalize(root: &mut Behavior, counter: &mut u32, prios: &mut HashMap<String, Priority>) {
    match root {
        Behavior::Leaf { name, .. } | Behavior::Periodic { name, .. } => {
            *name = format!("t{}", *counter);
            prios.insert(name.clone(), Priority(*counter % 7));
            *counter += 1;
        }
        Behavior::Seq(children) | Behavior::Par(children) => {
            for c in children {
                finalize(c, counter, prios);
            }
        }
    }
}

fn spec_from(root: Behavior) -> SystemSpec {
    let mut root = root;
    let mut counter = 0;
    let mut prios = HashMap::new();
    finalize(&mut root, &mut counter, &mut prios);
    let mut spec = SystemSpec::new();
    spec.add_pe(PeSpec {
        name: "pe".into(),
        root,
        priorities: prios,
    });
    spec
}

fn alg_strategy() -> impl Strategy<Value = SchedAlg> {
    prop_oneof![
        Just(SchedAlg::PriorityPreemptive),
        Just(SchedAlg::PriorityCooperative),
        Just(SchedAlg::Fifo),
        Just(SchedAlg::RoundRobin {
            quantum: Duration::from_micros(80)
        }),
        Just(SchedAlg::Edf),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn architecture_serializes_total_compute(
        root in behavior_strategy(2),
        alg in alg_strategy(),
    ) {
        let spec = spec_from(root);
        let total = spec.total_compute();
        let run = run_architecture(&spec, alg, TimeSlice::WholeDelay, &RunConfig::default())
            .expect("architecture run");
        prop_assert!(run.report.blocked.is_empty());
        prop_assert_eq!(run.end_time(), SimTime::ZERO + total);

        // No two task tracks overlap.
        let segs = run.segments();
        let tracks: Vec<_> = segs.values().collect();
        for i in 0..tracks.len() {
            for j in (i + 1)..tracks.len() {
                prop_assert_eq!(
                    sldl_sim::trace::overlap(tracks[i], tracks[j]),
                    Duration::ZERO
                );
            }
        }
    }

    #[test]
    fn unscheduled_is_a_lower_bound(root in behavior_strategy(2)) {
        let spec = spec_from(root);
        let unsched = run_unscheduled(&spec, &RunConfig::default()).expect("unscheduled run");
        let arch = run_architecture(
            &spec,
            SchedAlg::PriorityPreemptive,
            TimeSlice::WholeDelay,
            &RunConfig::default(),
        )
        .expect("architecture run");
        prop_assert!(unsched.end_time() <= arch.end_time());
    }

    #[test]
    fn executors_are_deterministic(
        root in behavior_strategy(2),
        alg in alg_strategy(),
    ) {
        let spec = spec_from(root);
        let a = run_architecture(&spec, alg, TimeSlice::WholeDelay, &RunConfig::default())
            .expect("run a");
        let b = run_architecture(&spec, alg, TimeSlice::WholeDelay, &RunConfig::default())
            .expect("run b");
        prop_assert_eq!(a.end_time(), b.end_time());
        prop_assert_eq!(a.context_switches(), b.context_switches());
        prop_assert_eq!(a.records, b.records);

        let u1 = run_unscheduled(&spec, &RunConfig::default()).expect("run u1");
        let u2 = run_unscheduled(&spec, &RunConfig::default()).expect("run u2");
        prop_assert_eq!(u1.records, u2.records);
    }
}
