//! Property-based tests on the refinement: for randomly generated
//! single-PE specs, the architecture model serializes (makespan = total
//! compute, zero overlap), the unscheduled model never finishes later than
//! the architecture model, and both executors are deterministic.
//!
//! Randomized inputs are drawn from the workspace's seeded
//! [`SmallRng`] (fixed seeds, many cases per property), so failures are
//! reproducible from the printed seed alone.

use std::collections::HashMap;
use std::time::Duration;

use model_refine::{
    run_architecture, run_unscheduled, Action, Behavior, PeSpec, RunConfig, SystemSpec,
};
use rtos_model::{Priority, SchedAlg, TimeSlice};
use sldl_sim::{SimTime, SmallRng};

/// Random compute-only behavior trees (no channels: always deadlock-free).
fn random_behavior(rng: &mut SmallRng, depth: u32) -> Behavior {
    let leaf = |rng: &mut SmallRng| {
        let n = 1 + rng.gen_range_usize(3);
        Behavior::Leaf {
            name: format!("leaf{}", rng.gen_range_u64(1000)), // renamed later
            actions: (0..n)
                .map(|k| {
                    let d = 1 + rng.gen_range_u64(299);
                    Action::compute(format!("d{k}"), Duration::from_micros(d))
                })
                .collect(),
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    // Weighted 3:1:2 leaf/seq/par, like the original strategy.
    match rng.gen_range_u64(6) {
        0..=2 => leaf(rng),
        3 => {
            let n = 1 + rng.gen_range_usize(3);
            Behavior::Seq((0..n).map(|_| random_behavior(rng, depth - 1)).collect())
        }
        _ => {
            let n = 2 + rng.gen_range_usize(2);
            Behavior::Par((0..n).map(|_| random_behavior(rng, depth - 1)).collect())
        }
    }
}

/// Renames leaves to be globally unique and assigns rotating priorities.
fn finalize(root: &mut Behavior, counter: &mut u32, prios: &mut HashMap<String, Priority>) {
    match root {
        Behavior::Leaf { name, .. } | Behavior::Periodic { name, .. } => {
            *name = format!("t{}", *counter);
            prios.insert(name.clone(), Priority(*counter % 7));
            *counter += 1;
        }
        Behavior::Seq(children) | Behavior::Par(children) => {
            for c in children {
                finalize(c, counter, prios);
            }
        }
    }
}

fn spec_from(root: Behavior) -> SystemSpec {
    let mut root = root;
    let mut counter = 0;
    let mut prios = HashMap::new();
    finalize(&mut root, &mut counter, &mut prios);
    let mut spec = SystemSpec::new();
    spec.add_pe(PeSpec {
        name: "pe".into(),
        root,
        priorities: prios,
    });
    spec
}

fn random_alg(rng: &mut SmallRng) -> SchedAlg {
    match rng.gen_range_u64(5) {
        0 => SchedAlg::PriorityPreemptive,
        1 => SchedAlg::PriorityCooperative,
        2 => SchedAlg::Fifo,
        3 => SchedAlg::RoundRobin {
            quantum: Duration::from_micros(80),
        },
        _ => SchedAlg::Edf,
    }
}

#[test]
fn architecture_serializes_total_compute() {
    for seed in 0..20u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = spec_from(random_behavior(&mut rng, 2));
        let alg = random_alg(&mut rng);
        let total = spec.total_compute();
        let run = run_architecture(&spec, alg, TimeSlice::WholeDelay, &RunConfig::default())
            .expect("architecture run");
        assert!(run.report.blocked.is_empty(), "seed {seed}");
        assert_eq!(run.end_time(), SimTime::ZERO + total, "seed {seed}");

        // No two task tracks overlap.
        let segs = run.segments();
        let tracks: Vec<_> = segs.values().collect();
        for i in 0..tracks.len() {
            for j in (i + 1)..tracks.len() {
                assert_eq!(
                    sldl_sim::trace::overlap(tracks[i], tracks[j]),
                    Duration::ZERO,
                    "seed {seed}"
                );
            }
        }
    }
}

#[test]
fn unscheduled_is_a_lower_bound() {
    for seed in 100..120u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = spec_from(random_behavior(&mut rng, 2));
        let unsched = run_unscheduled(&spec, &RunConfig::default()).expect("unscheduled run");
        let arch = run_architecture(
            &spec,
            SchedAlg::PriorityPreemptive,
            TimeSlice::WholeDelay,
            &RunConfig::default(),
        )
        .expect("architecture run");
        assert!(unsched.end_time() <= arch.end_time(), "seed {seed}");
    }
}

#[test]
fn executors_are_deterministic() {
    for seed in 200..220u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = spec_from(random_behavior(&mut rng, 2));
        let alg = random_alg(&mut rng);
        let a = run_architecture(&spec, alg, TimeSlice::WholeDelay, &RunConfig::default())
            .expect("run a");
        let b = run_architecture(&spec, alg, TimeSlice::WholeDelay, &RunConfig::default())
            .expect("run b");
        assert_eq!(a.end_time(), b.end_time(), "seed {seed}");
        assert_eq!(a.context_switches(), b.context_switches(), "seed {seed}");
        assert_eq!(a.records, b.records, "seed {seed}");

        let u1 = run_unscheduled(&spec, &RunConfig::default()).expect("run u1");
        let u2 = run_unscheduled(&spec, &RunConfig::default()).expect("run u2");
        assert_eq!(u1.records, u2.records, "seed {seed}");
    }
}
