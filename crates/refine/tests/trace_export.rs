//! Trace-tooling round trip on a refined model: segments → Gantt → CSV.

use model_refine::{figure3_spec, run_architecture, Figure3Delays, RunConfig};
use rtos_model::{SchedAlg, TimeSlice};
use sldl_sim::trace::{render_gantt, to_csv};
use sldl_sim::SimTime;

#[test]
fn architecture_trace_exports_to_gantt_and_csv() {
    let spec = figure3_spec(&Figure3Delays::default());
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();

    let segs = run.segments();
    let tracks: Vec<(&str, &[sldl_sim::trace::Segment])> = ["task_b2", "task_b3"]
        .iter()
        .map(|t| (*t, segs[*t].as_slice()))
        .collect();
    // Width 70 puts one cell per 25 us, so every segment boundary of the
    // Fig. 3 schedule lands exactly on the cell grid.
    let gantt = render_gantt(&tracks, SimTime::ZERO, run.end_time(), 70);
    let lines: Vec<&str> = gantt.lines().collect();
    assert_eq!(lines.len(), 2);
    // Both rows are non-empty and mutually exclusive column-wise (the
    // serialization property rendered visually).
    let row = |l: &str| l.split('|').nth(1).unwrap().to_string();
    let (r2, r3) = (row(lines[0]), row(lines[1]));
    let mut both_busy = 0;
    for (a, b) in r2.chars().zip(r3.chars()) {
        if a != '.' && b != '.' {
            both_busy += 1;
        }
    }
    assert_eq!(both_busy, 0, "gantt rows overlap:\n{gantt}");

    let csv = to_csv(&run.records);
    assert!(csv.lines().count() > 20);
    assert!(csv.contains("span_begin,\"task_b3\",\"d1\""));
    assert!(csv.contains("marker,\"bus_irq\",\"interrupt\""));
    // Every line has exactly 5 columns (quoted fields contain no commas).
    for line in csv.lines().skip(1) {
        assert_eq!(line.split(',').count(), 5, "bad csv line: {line}");
    }
}
