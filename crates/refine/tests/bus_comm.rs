//! Communication refinement onto arbitrated buses: zero-latency structural
//! equivalence with the abstract cross-PE rendezvous, timed transfer costs,
//! interrupt-driven delivery, and monotone contention as the bus narrows.

use std::collections::HashMap;
use std::time::Duration;

use model_refine::{
    run_architecture, run_architecture_with_comm, Action, Behavior, BusBinding, BusMap,
    ChannelKind, PeSpec, RunConfig, SystemSpec,
};
use rtos_model::{Priority, SchedAlg, TimeSlice};
use sldl_sim::bus::{Arbitration, BusConfig};
use sldl_sim::RecordKind;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// Producer on pe0 streams `msgs` messages to a consumer on pe1.
fn stream_spec(msgs: u64) -> SystemSpec {
    let mut spec = SystemSpec::new();
    let link = spec.add_channel("link", ChannelKind::Rendezvous);

    let mut actions = Vec::new();
    for _ in 0..msgs {
        actions.push(Action::compute("work", us(50)));
        actions.push(Action::Send(link));
    }
    let mut prio0 = HashMap::new();
    prio0.insert("producer".into(), Priority(1));
    spec.add_pe(PeSpec {
        name: "pe0".into(),
        root: Behavior::leaf("producer", actions),
        priorities: prio0,
    });

    let mut actions = Vec::new();
    for _ in 0..msgs {
        actions.push(Action::Recv(link));
        actions.push(Action::compute("use", us(20)));
    }
    let mut prio1 = HashMap::new();
    prio1.insert("consumer".into(), Priority(1));
    spec.add_pe(PeSpec {
        name: "pe1".into(),
        root: Behavior::leaf("consumer", actions),
        priorities: prio1,
    });
    spec
}

fn map_with(cfg: BusConfig) -> BusMap {
    let mut map = BusMap::default();
    let bus = map.add_bus(cfg);
    map.assign(
        "link",
        BusBinding {
            bus,
            bytes_per_msg: 64,
            priority: 1,
        },
    );
    map
}

/// An ideal (zero-cost) bus must reproduce the abstract model *exactly*:
/// same end time, same trace records byte for byte. Only the bus statistics
/// reveal that messages were counted.
#[test]
fn zero_latency_bus_is_structurally_identical() {
    let spec = stream_spec(4);
    let abstract_run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    let refined = run_architecture_with_comm(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
        &map_with(BusConfig::ideal("b0")),
    )
    .unwrap();

    assert_eq!(refined.end_time(), abstract_run.end_time());
    assert_eq!(refined.records, abstract_run.records);
    assert_eq!(
        refined.channel_fairness, abstract_run.channel_fairness,
        "match-phase fairness must be untouched by an ideal bus"
    );

    let stats = &refined.bus_stats[0];
    assert_eq!(stats.transactions, 4);
    assert_eq!(stats.bytes, 4 * 64);
    assert_eq!(stats.busy, Duration::ZERO);
    assert_eq!(stats.contended, 0);
    assert!(abstract_run.bus_stats.is_empty());
}

/// A timed bus charges each transfer through the sender's RTOS and lands
/// the delivery as an interrupt on the receiver: end time grows by the bus
/// time, and the trace shows the transaction protocol.
#[test]
fn timed_bus_charges_transfers_and_raises_rx_interrupts() {
    let spec = stream_spec(3);
    let ideal = run_architecture_with_comm(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
        &map_with(BusConfig::ideal("b0")),
    )
    .unwrap();
    // 64 bytes / 8 wide = 8 beats x 2us + 1us setup = 17us per message.
    let cfg = BusConfig::new("b0", us(2), 8, us(1), Arbitration::FixedPriority);
    assert_eq!(cfg.transfer_time(64), us(17));
    let map = map_with(cfg);
    let timed = run_architecture_with_comm(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
        &map,
    )
    .unwrap();

    assert_eq!(timed.end_time(), ideal.end_time() + us(3 * 17));

    let stats = &timed.bus_stats[0];
    assert_eq!(stats.transactions, 3);
    assert_eq!(stats.bytes, 3 * 64);
    assert_eq!(stats.busy, us(3 * 17));
    assert_eq!(stats.contended, 0, "single master never contends");
    assert_eq!(stats.grants.len(), 1);
    assert_eq!(stats.grants[0].master, "pe0:link");
    assert_eq!(stats.grants[0].grants, 3);

    // Protocol visible in the trace: req/grant markers on the bus track,
    // transfer spans, and the receive interrupt on pe1.
    let mut reqs = 0;
    let mut xfers = 0;
    let mut irqs = 0;
    for r in &timed.records {
        match &r.kind {
            RecordKind::Marker { track, label } if track == "bus:b0" && label == "req:pe0:link" => {
                reqs += 1;
            }
            RecordKind::Marker { track, label } if track == "pe1:irq" => {
                assert_eq!(label, "rx:link");
                irqs += 1;
            }
            RecordKind::SpanBegin { track, label } if track == "bus:b0" => {
                assert_eq!(label, "xfer:pe0:link:64");
                xfers += 1;
            }
            _ => {}
        }
    }
    assert_eq!(reqs, 3);
    assert_eq!(xfers, 3);
    assert_eq!(irqs, 3);

    // The remote notify + interrupt_return path shows up in pe1's metrics.
    let pe1 = &timed.pe_metrics[1];
    assert_eq!(pe1.pe, "pe1");
    assert!(pe1.metrics.isr_notifies >= 3);
    assert!(pe1.metrics.interrupt_returns >= 3);
}

/// Two channels from two PEs onto one bus: the narrower the bus, the longer
/// it stays busy and the longer losers wait — contention is monotone in the
/// inverse width.
#[test]
fn contention_is_monotone_as_the_bus_narrows() {
    let mut spec = SystemSpec::new();
    let a = spec.add_channel("a", ChannelKind::Rendezvous);
    let b = spec.add_channel("b", ChannelKind::Rendezvous);

    for (pe, ch) in [("pe0", a), ("pe1", b)] {
        let mut actions = Vec::new();
        for _ in 0..4 {
            actions.push(Action::compute("work", us(10)));
            actions.push(Action::Send(ch));
        }
        let mut prio = HashMap::new();
        prio.insert(format!("tx_{pe}"), Priority(1));
        spec.add_pe(PeSpec {
            name: pe.into(),
            root: Behavior::leaf(format!("tx_{pe}"), actions),
            priorities: prio,
        });
    }
    // Two receiver tasks so both channels can have a pending receiver at
    // once — the senders then genuinely compete for the bus.
    let mut prio = HashMap::new();
    prio.insert("rx_a".into(), Priority(1));
    prio.insert("rx_b".into(), Priority(2));
    spec.add_pe(PeSpec {
        name: "pe2".into(),
        root: Behavior::Par(vec![
            Behavior::leaf("rx_a", vec![Action::Recv(a); 4]),
            Behavior::leaf("rx_b", vec![Action::Recv(b); 4]),
        ]),
        priorities: prio,
    });

    let mut prev_busy = Duration::ZERO;
    let mut prev_wait = Duration::ZERO;
    let mut prev_end = sldl_sim::SimTime::ZERO;
    for width in [64, 16, 4, 1] {
        let mut map = BusMap::default();
        let bus = map.add_bus(BusConfig::new(
            "shared",
            us(1),
            width,
            us(2),
            Arbitration::RoundRobin,
        ));
        map.assign(
            "a",
            BusBinding {
                bus,
                bytes_per_msg: 32,
                priority: 1,
            },
        );
        map.assign(
            "b",
            BusBinding {
                bus,
                bytes_per_msg: 32,
                priority: 2,
            },
        );
        let run = run_architecture_with_comm(
            &spec,
            SchedAlg::PriorityPreemptive,
            TimeSlice::WholeDelay,
            &RunConfig::default(),
            &map,
        )
        .unwrap();
        assert!(run.report.blocked.is_empty(), "{:?}", run.report.blocked);
        let stats = &run.bus_stats[0];
        assert_eq!(stats.transactions, 8);
        assert!(
            stats.busy >= prev_busy,
            "width {width}: busy {:?} < {:?}",
            stats.busy,
            prev_busy
        );
        assert!(
            stats.max_wait >= prev_wait,
            "width {width}: max_wait {:?} < {:?}",
            stats.max_wait,
            prev_wait
        );
        assert!(run.end_time() >= prev_end);
        prev_busy = stats.busy;
        prev_wait = stats.max_wait;
        prev_end = run.end_time();
    }
    assert!(prev_busy > Duration::ZERO);
    assert!(
        prev_wait > Duration::ZERO,
        "narrow bus must show contention"
    );
}
