//! Tests for periodic behaviors in the DSL: the `task_endcycle` refinement
//! (paper Fig. 4's periodic hard-real-time task model).

use std::collections::HashMap;
use std::time::Duration;

use model_refine::{
    run_architecture, run_unscheduled, Action, Behavior, PeSpec, RunConfig, SystemSpec,
    ValidateSpecError,
};
use rtos_model::{Priority, SchedAlg, TimeSlice};
use sldl_sim::SimTime;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// A control-style PE: a fast periodic control loop plus a slower periodic
/// logger, under RMS.
fn control_spec(cycles: u32) -> SystemSpec {
    let mut spec = SystemSpec::new();
    spec.add_pe(PeSpec {
        name: "mcu".into(),
        root: Behavior::Par(vec![
            Behavior::periodic(
                "control",
                us(1_000),
                cycles,
                vec![
                    Action::compute("sense", us(100)),
                    Action::compute("law", us(150)),
                    Action::compute("actuate", us(50)),
                ],
            ),
            Behavior::periodic(
                "logger",
                us(4_000),
                cycles / 4,
                vec![Action::compute("log", us(800))],
            ),
        ]),
        priorities: HashMap::new(),
    });
    spec
}

#[test]
fn periodic_tasks_release_on_the_grid_under_rms() {
    let spec = control_spec(8);
    let run = run_architecture(
        &spec,
        SchedAlg::Rms,
        TimeSlice::Quantum(us(50)),
        &RunConfig::default(),
    )
    .unwrap();
    assert!(run.report.blocked.is_empty(), "{:?}", run.report.blocked);

    let segs = run.segments();
    // Control's "sense" stage begins exactly at each 1 ms release (it is
    // the highest-RMS-priority task, so it is never delayed). Each 100 us
    // stage is recorded as two 50 us slice segments, so check membership.
    let sense_starts: Vec<u64> = segs["control"]
        .iter()
        .filter(|s| s.label == "sense")
        .map(|s| s.start.as_micros())
        .collect();
    for k in 0..8 {
        assert!(
            sense_starts.contains(&(k * 1_000)),
            "missing release at {k} ms: {sense_starts:?}"
        );
    }

    // No deadline misses and utilization as designed (0.3 + 0.2).
    let m = &run.pe_metrics[0].metrics;
    assert_eq!(m.deadline_misses(), 0);
    let control = m.tasks.iter().find(|t| t.name == "control").unwrap();
    assert_eq!(control.cycle_response_times.len(), 8);
    assert!(control.cycle_response_times.iter().all(|&r| r == us(300)));
}

#[test]
fn logger_is_preempted_by_the_control_loop() {
    let spec = control_spec(8);
    let run = run_architecture(
        &spec,
        SchedAlg::Rms,
        TimeSlice::Quantum(us(50)),
        &RunConfig::default(),
    )
    .unwrap();
    let m = &run.pe_metrics[0].metrics;
    let logger = m.tasks.iter().find(|t| t.name == "logger").unwrap();
    // The 800 us log job spans at least one 1 ms control release, so it is
    // preempted at least once per cycle.
    assert!(
        logger.preemptions >= 2,
        "preemptions {}",
        logger.preemptions
    );
    assert_eq!(logger.deadline_misses, 0);
    // Its response exceeds its own WCET by the control interference.
    assert!(logger
        .cycle_response_times
        .iter()
        .all(|&r| r >= us(800) && r <= us(1_400)));
}

#[test]
fn unscheduled_and_architecture_agree_when_contention_free() {
    // A single periodic task: refinement adds nothing.
    let mut spec = SystemSpec::new();
    spec.add_pe(PeSpec {
        name: "pe".into(),
        root: Behavior::periodic("solo", us(500), 4, vec![Action::compute("w", us(200))]),
        priorities: HashMap::new(),
    });
    let u = run_unscheduled(&spec, &RunConfig::default()).unwrap();
    let a = run_architecture(
        &spec,
        SchedAlg::Rms,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    // Both run 4 cycles on a 500 us grid and end at 2 ms.
    assert_eq!(u.end_time(), SimTime::from_micros(2_000));
    assert_eq!(a.end_time(), SimTime::from_micros(2_000));
    let us_segs = u.segments();
    let ar_segs = a.segments();
    assert_eq!(us_segs["solo"], ar_segs["solo"]);
}

#[test]
fn validation_rejects_periodic_inside_seq() {
    let mut spec = SystemSpec::new();
    spec.add_pe(PeSpec {
        name: "pe".into(),
        root: Behavior::Seq(vec![
            Behavior::leaf("setup", vec![Action::compute("s", us(10))]),
            Behavior::periodic("bad", us(100), 2, vec![]),
        ]),
        priorities: HashMap::new(),
    });
    assert_eq!(
        spec.validate(),
        Err(ValidateSpecError::PeriodicNotATask("bad".into()))
    );
}

#[test]
fn periodic_as_pe_root_is_accepted() {
    let mut spec = SystemSpec::new();
    spec.add_pe(PeSpec {
        name: "pe".into(),
        root: Behavior::periodic("root_task", us(100), 3, vec![Action::compute("w", us(20))]),
        priorities: HashMap::new(),
    });
    assert_eq!(spec.validate(), Ok(()));
    let run = run_architecture(
        &spec,
        SchedAlg::Rms,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    assert!(run.report.blocked.is_empty());
    assert_eq!(run.end_time(), SimTime::from_micros(300));
}

#[test]
fn overrunning_periodic_behavior_records_misses() {
    let mut spec = SystemSpec::new();
    let mut prios = HashMap::new();
    prios.insert("hog".into(), Priority(1));
    spec.add_pe(PeSpec {
        name: "pe".into(),
        root: Behavior::periodic(
            "hog",
            us(100),
            3,
            vec![Action::compute("too_long", us(150))],
        ),
        priorities: prios,
    });
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    let m = &run.pe_metrics[0].metrics;
    assert_eq!(m.deadline_misses(), 3);
}

#[test]
fn total_compute_counts_cycles() {
    let spec = control_spec(8);
    // control: 8 × 300; logger: 2 × 800.
    assert_eq!(spec.total_compute(), us(8 * 300 + 2 * 800));
}
