//! Multi-PE architecture models: one RTOS instance per processing element,
//! cross-PE rendezvous refined onto the partner's RTOS (interrupt-context
//! notify), per the paper's "the same refinement steps are applied to all
//! the PEs in a multi-processor system".

use std::collections::HashMap;
use std::time::Duration;

use model_refine::{
    run_architecture, run_unscheduled, Action, Behavior, ChannelKind, PeSpec, RunConfig, SystemSpec,
};
use rtos_model::{Priority, SchedAlg, TimeSlice};
use sldl_sim::SimTime;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// Producer on pe0 sends to consumer on pe1 through a rendezvous; each PE
/// also runs a local background task.
fn two_pe_spec() -> SystemSpec {
    let mut spec = SystemSpec::new();
    let link = spec.add_channel("link", ChannelKind::Rendezvous);

    let mut prio0 = HashMap::new();
    prio0.insert("producer".into(), Priority(1));
    prio0.insert("bg0".into(), Priority(5));
    spec.add_pe(PeSpec {
        name: "pe0".into(),
        root: Behavior::Par(vec![
            Behavior::leaf(
                "producer",
                vec![
                    Action::compute("p1", us(100)),
                    Action::Send(link),
                    Action::compute("p2", us(100)),
                ],
            ),
            Behavior::leaf("bg0", vec![Action::compute("bg0w", us(400))]),
        ]),
        priorities: prio0,
    });

    let mut prio1 = HashMap::new();
    prio1.insert("consumer".into(), Priority(1));
    prio1.insert("bg1".into(), Priority(5));
    spec.add_pe(PeSpec {
        name: "pe1".into(),
        root: Behavior::Par(vec![
            Behavior::leaf(
                "consumer",
                vec![Action::Recv(link), Action::compute("c1", us(200))],
            ),
            Behavior::leaf("bg1", vec![Action::compute("bg1w", us(300))]),
        ]),
        priorities: prio1,
    });
    spec
}

#[test]
fn pes_run_in_parallel_but_serialize_internally() {
    let spec = two_pe_spec();
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    assert!(run.report.blocked.is_empty(), "{:?}", run.report.blocked);

    // Intra-PE: serialized.
    assert_eq!(run.overlap("producer", "bg0"), Duration::ZERO);
    assert_eq!(run.overlap("consumer", "bg1"), Duration::ZERO);
    // Inter-PE: truly parallel (bg tasks overlap across PEs).
    assert!(run.overlap("bg0", "bg1") > Duration::ZERO);

    // pe0's work: 600us serialized; pe1: consumer waits until 100 (cross
    // rendezvous), then 200us + bg1 300us serialized.
    // Makespan is bounded by per-PE serialization, not the global sum.
    assert!(run.end_time() <= SimTime::from_micros(600));
    assert_eq!(run.pe_metrics.len(), 2);
    assert!(run
        .pe_metrics
        .iter()
        .all(|m| m.metrics.cpu_busy > Duration::ZERO));
}

#[test]
fn cross_rendezvous_synchronizes_the_two_sides() {
    let spec = two_pe_spec();
    let run = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    let segs = run.segments();
    // consumer's c1 starts only after producer's p1 completed (the send at
    // t=100 releases the recv).
    let c1 = segs["consumer"].iter().find(|s| s.label == "c1").unwrap();
    let p1 = segs["producer"].iter().find(|s| s.label == "p1").unwrap();
    assert!(c1.start >= p1.end);
    assert_eq!(p1.end, SimTime::from_micros(100));
}

#[test]
fn unscheduled_multi_pe_matches_architecture_for_independent_work() {
    // With one task per PE, refinement introduces no serialization delay:
    // both models finish at the same time.
    let mut spec = SystemSpec::new();
    for (i, work) in [300u64, 500].iter().enumerate() {
        spec.add_pe(PeSpec {
            name: format!("pe{i}"),
            root: Behavior::leaf(format!("solo{i}"), vec![Action::compute("w", us(*work))]),
            priorities: HashMap::new(),
        });
    }
    let unsched = run_unscheduled(&spec, &RunConfig::default()).unwrap();
    let arch = run_architecture(
        &spec,
        SchedAlg::PriorityPreemptive,
        TimeSlice::WholeDelay,
        &RunConfig::default(),
    )
    .unwrap();
    assert_eq!(unsched.end_time(), SimTime::from_micros(500));
    assert_eq!(arch.end_time(), SimTime::from_micros(500));
    assert_eq!(arch.context_switches(), 0);
}
