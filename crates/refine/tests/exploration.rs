//! Exploration-driver tests: sweeping scheduling configurations over the
//! Fig. 3 design and ranking them against an interrupt-response budget.

use std::time::Duration;

use model_refine::{explore, figure3_spec, Candidate, Constraint, Figure3Delays};
use rtos_model::{SchedAlg, TimeSlice};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn candidates() -> Vec<Candidate> {
    let mut out = Vec::new();
    for alg in [SchedAlg::PriorityPreemptive, SchedAlg::Fifo] {
        for slice in [
            TimeSlice::WholeDelay,
            TimeSlice::Quantum(us(100)),
            TimeSlice::Quantum(us(25)),
        ] {
            out.push(Candidate {
                alg,
                slice,
                switch_cost: Duration::ZERO,
            });
        }
    }
    out
}

fn irq_budget(max_us: u64) -> Vec<Constraint> {
    vec![Constraint::ResponseWithin {
        marker_track: "bus_irq".into(),
        track: "task_b3".into(),
        label: "d3".into(),
        max: us(max_us),
    }]
}

#[test]
fn exploration_ranks_feasible_candidates_first() {
    let spec = figure3_spec(&Figure3Delays::default());
    let evals = explore(&spec, &candidates(), &irq_budget(60)).unwrap();
    assert_eq!(evals.len(), 6);
    // At least the finely-sliced preemptive candidate meets a 60 us budget
    // (interrupt at 800; 25 us slices inside d6 starting at 750 → response
    // 0 us at the 800 boundary).
    assert!(evals[0].feasible(), "best: {}", evals[0].candidate);
    assert_eq!(evals[0].candidate.alg, SchedAlg::PriorityPreemptive);
    assert!(matches!(
        evals[0].candidate.slice,
        TimeSlice::Quantum(q) if q <= us(100)
    ));
    // Ranking is monotone: once infeasible candidates start, they continue.
    let first_infeasible = evals.iter().position(|e| !e.feasible());
    if let Some(i) = first_infeasible {
        assert!(evals[i..].iter().all(|e| !e.feasible()));
    }
    // FIFO (non-preemptive) can never meet a tight interrupt budget here.
    for e in &evals {
        if e.candidate.alg == SchedAlg::Fifo {
            assert!(!e.feasible(), "FIFO met the budget?! {}", e.candidate);
        }
    }
}

#[test]
fn looser_budget_admits_more_candidates() {
    let spec = figure3_spec(&Figure3Delays::default());
    let tight = explore(&spec, &candidates(), &irq_budget(30)).unwrap();
    let loose = explore(&spec, &candidates(), &irq_budget(300)).unwrap();
    let n_tight = tight.iter().filter(|e| e.feasible()).count();
    let n_loose = loose.iter().filter(|e| e.feasible()).count();
    assert!(n_loose >= n_tight, "tight {n_tight} loose {n_loose}");
    assert!(
        n_loose >= 3,
        "loose budget admits whole-delay too: {n_loose}"
    );
}

#[test]
fn switch_cost_increases_makespan_in_evaluations() {
    let spec = figure3_spec(&Figure3Delays::default());
    let zero = Candidate::new(SchedAlg::PriorityPreemptive);
    let costly = Candidate {
        switch_cost: us(10),
        ..zero
    };
    let evals = explore(&spec, &[zero, costly], &[]).unwrap();
    // Both feasible (no constraints); the costly one ends later.
    let end_of = |c: &Candidate| {
        evals
            .iter()
            .find(|e| e.candidate == *c)
            .unwrap()
            .run
            .end_time()
    };
    assert!(end_of(&costly) > end_of(&zero));
}

#[test]
fn candidate_display_is_informative() {
    let c = Candidate {
        alg: SchedAlg::Edf,
        slice: TimeSlice::Quantum(us(50)),
        switch_cost: Duration::from_nanos(9_500),
    };
    assert_eq!(c.to_string(), "edf, 50us slices, 9500ns/switch");
    assert_eq!(
        Candidate::new(SchedAlg::Fifo).to_string(),
        "fifo, whole-delay"
    );
}
